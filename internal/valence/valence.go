// Package valence implements Sections 8 and 9.4–9.6 of "Asynchronous
// Failure Detectors": the tagged execution tree RtD of a system using an
// AFD, the valence analysis of its nodes (bivalent / univalent,
// Propositions 47–51, Lemma 52), and the hook construction (Lemmas 53–58,
// Theorem 59, Figures 2–3) that pinpoints how AFD information circumvents
// the impossibility of asynchronous consensus.
//
// The paper's RtD is an infinite tree over task labels; here it is explored
// as a finite graph by memoizing nodes on (system state encoding,
// FD-sequence index) — two tree nodes with equal config and FD tags have
// identical subtrees (Lemma 33), so the quotient preserves exactly the
// properties the paper proves.  Edges with ⊥ action tags are self-loops in
// the quotient and are omitted; Lemma 56 shows hooks never involve them.
//
// The system composed into the tree is the paper's S (Section 9.3) *without*
// the crash and failure-detector automata: both crash events and detector
// outputs are injected by the FD edge from the fixed admissible sequence tD
// over Iˆ ∪ OD, exactly as Section 8.2 tags the tree.
//
// Exploration is parallel by default (Config.Workers) and byte-identical to
// the serial reference at every worker count: workers expand the frontier
// against a sharded memo index keyed by a collision-checked 64-bit state
// hash, and a deterministic renumbering pass reassigns final NodeIDs in
// serial-BFS order, so Stats, valences, DOT output, and hook reports never
// depend on scheduling.  Node and edge storage is struct-of-arrays over
// shared arenas (one byte arena interns each distinct state encoding once).
package valence

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Label names one outgoing edge class of every tree node: the FD edge or one
// task of the composition (Proc_i, Chan_{i,j}, Env_{i,x}).
type Label int

// LabelFD is the failure-detector edge; other labels index composition tasks.
const LabelFD Label = -1

// Valence classifies a node per Section 9.5.
type Valence uint8

// Valence values.  A node is v-valent when only decision value v is
// reachable, bivalent when both are, and unknown when no decision is
// reachable in the explored graph (which the paper's Proposition 48 rules
// out for fair branches; it indicates the supplied tD was too weak).
const (
	ValUnknown Valence = iota
	ValZero
	ValOne
	ValBivalent
)

// String implements fmt.Stringer.
func (v Valence) String() string {
	switch v {
	case ValZero:
		return "0-valent"
	case ValOne:
		return "1-valent"
	case ValBivalent:
		return "bivalent"
	default:
		return "unknown"
	}
}

const (
	maskZero = 1 << iota
	maskOne
)

func maskToValence(m uint8) Valence {
	switch m {
	case maskZero:
		return ValZero
	case maskOne:
		return ValOne
	case maskZero | maskOne:
		return ValBivalent
	default:
		return ValUnknown
	}
}

// NodeID indexes a node of the explored graph.
type NodeID int

// Edge is one outgoing edge of a node: the edge's label, its action tag, and
// the target node.
type Edge struct {
	Label Label
	Act   ioa.Action
	To    NodeID
}

// ErrStateSpaceCap reports that exploration created more nodes than
// Config.MaxNodes allows.  Nodes carries the partial count at the moment the
// cap was hit, so callers can distinguish "state space genuinely larger than
// the budget" from other failures and re-run with a raised cap.
type ErrStateSpaceCap struct {
	Cap   int // the configured cap
	Nodes int // nodes created when the cap was hit
}

// Error implements error.
func (e *ErrStateSpaceCap) Error() string {
	return fmt.Sprintf("valence: state space exceeds cap %d (%d nodes created)", e.Cap, e.Nodes)
}

// ErrCanceled is returned by Explore when the Progress hook requests an
// abort by returning false.
var ErrCanceled = errors.New("valence: exploration canceled by Progress hook")

// Progress is a snapshot of a running exploration, delivered to the
// Config.Progress hook.
type Progress struct {
	Nodes int64 // nodes created so far
	Edges int64 // edges created so far
	Done  bool  // set on the final report, after expansion completed
}

// Config configures an exploration.
type Config struct {
	// N is the number of locations.
	N int
	// Family is the failure-detector family whose outputs appear in TD.
	Family string
	// Algo selects the consensus algorithm hosted in the tree: "ct" (the
	// rotating-coordinator algorithm; default) or "s" (the CT96 S-based
	// flooding algorithm, which has no round churn and therefore a much
	// smaller reachable graph — preferable for n ≥ 3).
	Algo string
	// TD is the fixed admissible FD sequence over Iˆ ∪ OD driving the FD
	// edges.  Its crash events are the run's fault pattern.
	TD trace.T
	// Values fixes environment proposals per location; -1 leaves that
	// location's environment free (both propose tasks enabled, Algorithm
	// 4).  nil frees every location.  Root bivalence needs at least one
	// free location whose proposal can swing the decision.
	Values []int
	// MaxNodes caps the exploration (default 200_000).  The cap is checked
	// as nodes are created; exceeding it fails Explore with
	// *ErrStateSpaceCap (valence computation needs the full reachable
	// graph).
	MaxNodes int
	// Workers is the number of exploration workers.  0 (the default) uses
	// runtime.GOMAXPROCS(0); 1 forces the serial reference path.  Explored
	// graphs are byte-identical at every worker count.
	Workers int
	// Progress, when non-nil, is called approximately every ProgressEvery
	// created nodes during expansion, and once more (Done=true) when
	// expansion completes.  Returning false cancels the exploration:
	// Explore returns ErrCanceled.  Calls are serialized; the hook never
	// runs concurrently with itself.
	Progress func(Progress) bool
	// ProgressEvery is the node interval between Progress calls
	// (default 50_000).
	ProgressEvery int
	// Reduce enables dynamic partial-order reduction: at each node the
	// explorer expands only an ample subset of the enabled steps —
	// a single location's cluster, chosen by the static independence
	// relation derived from the routing index (ioa.Sites) — with a
	// visibility/cycle/bivalence proviso so crash events, FD outputs, and
	// decision actions are never pruned and every surviving node's valence
	// and the hook set are identical to the unreduced graph's (the oracle's
	// DiffReduction mode re-verifies this).  Default off; opt-in.  The
	// reduced graph is still byte-identical at every worker count, but note
	// Reduce routes Workers=1 through the parallel engine (the analysis
	// rounds need its re-expansion machinery), so it composes with, rather
	// than bypasses, the serial reference path.
	Reduce bool
	// Telemetry, when non-nil, receives exploration metrics — nodes/edges
	// created (CValenceNodes/CValenceEdges), expansions, live and peak
	// frontier width, worker count and busy time, fixpoint rounds — and
	// valence-category trace spans (per-worker expansions, fixpoint rounds).
	// Purely observational: explored graphs are identical with or without.
	Telemetry telemetry.Sink
}

func (c Config) maxNodes() int {
	if c.MaxNodes <= 0 {
		return 200_000
	}
	return c.MaxNodes
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) progressEvery() int {
	if c.ProgressEvery > 0 {
		return c.ProgressEvery
	}
	return 50_000
}

// Explorer holds the explored quotient of RtD.
//
// After Explore the graph lives in struct-of-arrays form: per-node columns
// (fdIdx, mask, interned encoding references) plus one shared edge arena in
// CSR layout (estart[id] .. estart[id+1] index the node's out-edges, in FD-
// edge-first, ascending-task-label order).  NodeIDs are serial-BFS order
// regardless of how many workers explored.
type Explorer struct {
	cfg     Config
	labels  []string // label names for reporting; index by task order
	tasks   []ioa.TaskRef
	rootSys *ioa.System // pristine root state; Explore starts from a clone
	done    bool

	// Per-node columns.
	fdIdx  []int32
	mask   []uint8
	encOff []int64
	encLen []int32
	// Interned state encodings: each distinct encoding stored once.  The
	// serial explorer concatenates them into arena (encOff/encLen index
	// it); the parallel explorer instead adopts its shard arena chunks
	// wholesale and records one slice header per node in encs — the
	// renumbering pass then moves no encoding bytes at all.
	arena []byte
	encs  [][]byte
	// CSR edge arena.
	estart []int64
	edges  []Edge

	// Reduction state (nil/zero unless Config.Reduce).
	red        *reduceInfo
	fullbit    []bool // per node: fully expanded (vs ample subset)
	redStats   reduceCounters
	propagated bool // analysis rounds already computed final masks
}

// reduceCounters accumulates reduction statistics during exploration.
type reduceCounters struct {
	reduced, pruned, sleep, poisoned int64
	rounds, forcedCycle, forcedBiv   int
}

// New builds the root system (consensus algorithm + channels + environment,
// per Section 9.3) and prepares an explorer.
func New(cfg Config) (*Explorer, error) {
	var procs []ioa.Automaton
	var err error
	switch cfg.Algo {
	case "", "ct":
		procs, err = consensus.Procs(cfg.N, cfg.Family)
	case "s":
		procs, err = consensus.SProcs(cfg.N, cfg.Family)
	default:
		return nil, fmt.Errorf("valence: unknown algorithm %q", cfg.Algo)
	}
	if err != nil {
		return nil, err
	}
	autos := procs
	autos = append(autos, system.Channels(cfg.N)...)
	for i := 0; i < cfg.N; i++ {
		if cfg.Values == nil || cfg.Values[i] < 0 {
			autos = append(autos, system.NewConsensusEnv(ioa.Loc(i)))
		} else {
			autos = append(autos, system.NewConsensusEnvFixed(ioa.Loc(i), cfg.Values[i]))
		}
	}
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, err
	}
	e := &Explorer{cfg: cfg, rootSys: sys}
	for _, tr := range sys.Tasks() {
		e.tasks = append(e.tasks, tr)
		e.labels = append(e.labels, sys.TaskLabel(tr))
	}
	if cfg.Reduce {
		red, err := buildReduceInfo(sys, cfg)
		if err != nil {
			return nil, err
		}
		e.red = red
	}
	return e, nil
}

// LabelName renders a label.
func (e *Explorer) LabelName(l Label) string {
	if l == LabelFD {
		return "FD"
	}
	return e.labels[l]
}

// NumNodes returns the number of distinct explored nodes.
func (e *Explorer) NumNodes() int { return len(e.fdIdx) }

// NumEdges returns the number of explored edges.
func (e *Explorer) NumEdges() int { return len(e.edges) }

// Root returns the root node's ID.
func (e *Explorer) Root() NodeID { return 0 }

// Valence returns the valence of a node (after Explore).
func (e *Explorer) Valence(id NodeID) Valence { return maskToValence(e.mask[id]) }

// Edges returns node id's out-edges in deterministic order: the FD edge
// first (if enabled), then task edges by ascending label.  The returned
// slice aliases the explorer's edge arena; callers must not modify it.
func (e *Explorer) Edges(id NodeID) []Edge {
	return e.edges[e.estart[id]:e.estart[id+1]]
}

// NodeFD returns the FD-sequence index tag of node id.
func (e *Explorer) NodeFD(id NodeID) int { return int(e.fdIdx[id]) }

// NodeEncoding returns node id's interned state encoding (the config tag).
// The slice aliases the explorer's arena; callers must not modify it.
// Exposed for the oracle layer's node-by-node differ.
func (e *Explorer) NodeEncoding(id NodeID) []byte { return e.nodeEnc(id) }

// nodeEnc returns node id's interned state encoding (the config tag).
func (e *Explorer) nodeEnc(id NodeID) []byte {
	if e.encs != nil {
		return e.encs[id]
	}
	off := e.encOff[id]
	return e.arena[off : off+int64(e.encLen[id])]
}

// stateHash fingerprints a node key (state encoding, FD index).  Collisions
// are legal — the memo index confirms every hit against the interned
// encoding — but the final avalanche keeps shard selection uniform.
func stateHash(enc []byte, fd int) uint64 {
	h := ioa.HashBytes(ioa.HashSeed, enc)
	h ^= uint64(fd)*0x9e3779b97f4a7c15 + 0x1000193
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ h>>31
}

// Explore expands the full reachable graph and computes valences.  It hits
// every reachable node exactly once; re-exploring requires a fresh Explorer.
func (e *Explorer) Explore() error {
	if e.done {
		return errors.New("valence: Explore called twice")
	}
	// Phase 1: frontier expansion with memoization (parallel workers when
	// configured; identical final tables either way).
	var err error
	w := e.cfg.workers()
	if tel := e.cfg.Telemetry; tel != nil {
		tel.SetGauge(telemetry.GValenceWorkers, int64(w))
	}
	if w > 1 || e.red != nil {
		// Reduction always runs on the parallel engine (its analysis rounds
		// need the re-expansion machinery), even at Workers=1; the tables
		// are byte-identical at every worker count either way.
		err = e.exploreParallel(w)
	} else {
		err = e.exploreSerial()
	}
	if err != nil {
		return err
	}
	e.done = true
	// Phase 2: forward and backward fixpoints of reachable decision values
	// (under reduction the analysis rounds already computed them).
	if !e.propagated {
		e.propagate()
	}
	if tel := e.cfg.Telemetry; tel != nil {
		tel.SetGauge(telemetry.GValenceFrontier, 0)
	}
	return nil
}

// serialState is the scratch of the single-threaded reference explorer.
type serialState struct {
	index map[uint64][]NodeID // state hash -> candidate nodes (collision list)
	pend  []*ioa.System       // per-node snapshot, retained until expanded
	buf   []byte              // encoding scratch
}

func (e *Explorer) exploreSerial() error {
	st := &serialState{index: make(map[uint64][]NodeID, 1024)}
	root := e.rootSys.CloneBare()
	st.buf = root.AppendEncode(st.buf[:0])
	e.addNodeSerial(st, root, 0, stateHash(st.buf, 0))
	nextProg := int64(e.cfg.progressEvery())
	for next := 0; next < len(e.fdIdx); next++ {
		if tel := e.cfg.Telemetry; tel != nil {
			tel.Count(telemetry.CValenceExpansions, 1)
			f := int64(len(e.fdIdx) - next - 1) // pending after this pop
			tel.SetGauge(telemetry.GValenceFrontier, f)
			tel.GaugeMax(telemetry.GValenceFrontierPeak, f)
		}
		e.estart = append(e.estart, int64(len(e.edges)))
		sys := st.pend[next]
		st.pend[next] = nil
		fd := int(e.fdIdx[next])
		// FD edge: the head of the remaining tD, if any (Section 8.2).
		if fd < len(e.cfg.TD) {
			act := e.cfg.TD[fd]
			child := sys.CloneBare()
			child.Apply(-1, act)
			if err := e.linkSerial(st, LabelFD, act, child, fd+1); err != nil {
				return err
			}
		}
		// Task edges.
		for li, tr := range e.tasks {
			act, ok := sys.Enabled(tr)
			if !ok {
				continue // ⊥ edge: self-loop in the quotient, omitted
			}
			child := sys.CloneBare()
			child.Apply(tr.Auto, act)
			if err := e.linkSerial(st, Label(li), act, child, fd); err != nil {
				return err
			}
		}
		if e.cfg.Progress != nil && int64(len(e.fdIdx)) >= nextProg {
			if !e.cfg.Progress(Progress{Nodes: int64(len(e.fdIdx)), Edges: int64(len(e.edges))}) {
				return ErrCanceled
			}
			nextProg = int64(len(e.fdIdx)) + int64(e.cfg.progressEvery())
		}
	}
	e.estart = append(e.estart, int64(len(e.edges)))
	if e.cfg.Progress != nil {
		if !e.cfg.Progress(Progress{Nodes: int64(len(e.fdIdx)), Edges: int64(len(e.edges)), Done: true}) {
			return ErrCanceled
		}
	}
	return nil
}

// linkSerial records an edge to the node for (child state, fd), creating and
// enqueueing the child if its key is new.  The cap is checked here, at node
// creation.
func (e *Explorer) linkSerial(st *serialState, l Label, act ioa.Action, child *ioa.System, fd int) error {
	st.buf = child.AppendEncode(st.buf[:0])
	h := stateHash(st.buf, fd)
	for _, id := range st.index[h] {
		if int(e.fdIdx[id]) == fd && bytes.Equal(e.nodeEnc(id), st.buf) {
			e.edges = append(e.edges, Edge{Label: l, Act: act, To: id})
			e.countEdge()
			return nil
		}
	}
	if len(e.fdIdx) >= e.cfg.maxNodes() {
		return &ErrStateSpaceCap{Cap: e.cfg.maxNodes(), Nodes: len(e.fdIdx)}
	}
	to := e.addNodeSerial(st, child, fd, h)
	e.edges = append(e.edges, Edge{Label: l, Act: act, To: to})
	e.countEdge()
	return nil
}

func (e *Explorer) countEdge() {
	if tel := e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValenceEdges, 1)
	}
}

// addNodeSerial interns st.buf as a new node's encoding and registers the
// node under hash h.
func (e *Explorer) addNodeSerial(st *serialState, sys *ioa.System, fd int, h uint64) NodeID {
	id := NodeID(len(e.fdIdx))
	e.fdIdx = append(e.fdIdx, int32(fd))
	e.mask = append(e.mask, 0)
	e.encOff = append(e.encOff, int64(len(e.arena)))
	e.encLen = append(e.encLen, int32(len(st.buf)))
	e.arena = append(e.arena, st.buf...)
	st.pend = append(st.pend, sys)
	st.index[h] = append(st.index[h], id)
	if tel := e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValenceNodes, 1)
	}
	return id
}

// reverse is the transposed edge relation in CSR form, with the decide bit
// of each edge precomputed; built once after expansion, used by the valence
// fixpoints, and released afterwards.
type reverse struct {
	start []int64
	pred  []NodeID
	bit   []uint8 // decide bit of the edge pred -> node
	ebit  []uint8 // decide bit per *forward* edge, aligned with e.edges
}

func (e *Explorer) buildReverse() *reverse {
	n := len(e.fdIdx)
	r := &reverse{
		start: make([]int64, n+1),
		pred:  make([]NodeID, len(e.edges)),
		bit:   make([]uint8, len(e.edges)),
		ebit:  make([]uint8, len(e.edges)),
	}
	for k := range e.edges {
		r.start[e.edges[k].To+1]++
		if b, ok := decideBit(e.edges[k].Act); ok {
			r.ebit[k] = b
		}
	}
	for i := 0; i < n; i++ {
		r.start[i+1] += r.start[i]
	}
	pos := make([]int64, n)
	copy(pos, r.start[:n])
	for id := 0; id < n; id++ {
		for k := e.estart[id]; k < e.estart[id+1]; k++ {
			to := e.edges[k].To
			r.pred[pos[to]] = NodeID(id)
			r.bit[pos[to]] = r.ebit[k]
			pos[to]++
		}
	}
	return r
}

// propagate computes each node's valence mask.  A node's valence is defined
// over the decision values occurring in exe(N) *or any descendant's
// execution* (Section 9.5), so the mask is the union of
//
//	past(N)   – decision events on walks from the root to N (all walks
//	            agree: whether location i's decide has fired is a function
//	            of the memoized state, and agreement fixes the value), and
//	future(N) – decision events reachable from N,
//
// each a monotone fixpoint over the uint8 mask lattice.  The fixpoints are
// unique, so the serial worklist and the parallel round-based solver below
// produce identical masks.
func (e *Explorer) propagate() {
	r := e.buildReverse()
	if w := e.cfg.workers(); w > 1 {
		e.propagateFutureParallel(r, w)
		e.propagatePastParallel(r, w)
	} else {
		e.propagateFuture(r)
		e.propagatePast(r)
	}
}

// propagateFuture computes future-reachable decisions by backward fixpoint:
// R(N) = ⋃ over edges N→M of decideBit(edge) ∪ R(M).
func (e *Explorer) propagateFuture(r *reverse) {
	n := len(e.fdIdx)
	work := make([]NodeID, 0, n)
	inWork := make([]bool, n)
	// Seed: nodes with outgoing decide edges.
	for i := 0; i < n; i++ {
		var m uint8
		for k := e.estart[i]; k < e.estart[i+1]; k++ {
			m |= r.ebit[k]
		}
		if m != 0 {
			e.mask[i] = m
			work = append(work, NodeID(i))
			inWork[i] = true
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[id] = false
		m := e.mask[id]
		for k := r.start[id]; k < r.start[id+1]; k++ {
			p := r.pred[k]
			if e.mask[p]|m != e.mask[p] {
				e.mask[p] |= m
				if !inWork[p] {
					work = append(work, p)
					inWork[p] = true
				}
			}
		}
	}
}

// propagatePast folds decision events of incoming walks forward:
// past(child) ⊇ past(parent) ∪ decideBit(edge).
func (e *Explorer) propagatePast(r *reverse) {
	n := len(e.fdIdx)
	past := make([]uint8, n)
	// Every node must be processed at least once: an edge's decide bit
	// contributes to the child even when the parent's own past is empty.
	work := make([]NodeID, n)
	inWork := make([]bool, n)
	for i := range work {
		work[i] = NodeID(i)
		inWork[i] = true
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[id] = false
		for k := e.estart[id]; k < e.estart[id+1]; k++ {
			m := past[id] | r.ebit[k]
			to := e.edges[k].To
			if past[to]|m != past[to] {
				past[to] |= m
				if !inWork[to] {
					work = append(work, to)
					inWork[to] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		e.mask[i] |= past[i]
	}
}

func decideBit(a ioa.Action) (uint8, bool) {
	if a.Kind != ioa.KindEnvOut || a.Name != system.ActNameDecide {
		return 0, false
	}
	switch a.Payload {
	case "0":
		return maskZero, true
	case "1":
		return maskOne, true
	default:
		return 0, false
	}
}

// Stats summarizes an explored graph.
type Stats struct {
	Nodes     int
	Edges     int
	Bivalent  int
	ZeroVal   int
	OneVal    int
	Unknown   int
	FDEdges   int
	MaxFDIdx  int
	DecideCut int // edges carrying decide actions

	// Reduction counters, all zero unless Config.Reduce.
	ReducedNodes   int // nodes expanded with a proper ample subset
	PrunedSteps    int // enabled steps not expanded, summed over reduced nodes
	SleepHits      int // pruned steps inherited from the parent's sleep set
	ReduceRounds   int // proviso analysis rounds run
	ForcedCycle    int // reduced nodes forced full by the cycle proviso
	ForcedBivalent int // reduced nodes forced full by bivalent completeness
	Poisoned       int // expansions falling back to full on a site-claim mismatch
}

// Stats computes summary statistics (after Explore).
func (e *Explorer) Stats() Stats {
	var s Stats
	s.Nodes = len(e.fdIdx)
	s.Edges = len(e.edges)
	for i := 0; i < s.Nodes; i++ {
		if fd := int(e.fdIdx[i]); fd > s.MaxFDIdx {
			s.MaxFDIdx = fd
		}
		switch maskToValence(e.mask[i]) {
		case ValBivalent:
			s.Bivalent++
		case ValZero:
			s.ZeroVal++
		case ValOne:
			s.OneVal++
		default:
			s.Unknown++
		}
	}
	for k := range e.edges {
		if e.edges[k].Label == LabelFD {
			s.FDEdges++
		}
		if _, ok := decideBit(e.edges[k].Act); ok {
			s.DecideCut++
		}
	}
	s.ReducedNodes = int(e.redStats.reduced)
	s.PrunedSteps = int(e.redStats.pruned)
	s.SleepHits = int(e.redStats.sleep)
	s.Poisoned = int(e.redStats.poisoned)
	s.ReduceRounds = e.redStats.rounds
	s.ForcedCycle = e.redStats.forcedCycle
	s.ForcedBivalent = e.redStats.forcedBiv
	return s
}

// FullyExpanded reports whether node id's out-edges cover every enabled step
// (always true without Config.Reduce; under reduction, false exactly for the
// nodes expanded with a proper ample subset).
func (e *Explorer) FullyExpanded(id NodeID) bool {
	if e.fullbit == nil {
		return true
	}
	return e.fullbit[id]
}

// TaskOwner returns the index (within the composition) of the automaton
// owning task label l, or -1 for LabelFD.  Exposed for the oracle layer's
// reduction checker, which replays paths through a fresh system.
func (e *Explorer) TaskOwner(l Label) int {
	if l == LabelFD {
		return -1
	}
	return e.tasks[l].Auto
}

// NewRootSystem returns a fresh clone of the composition's initial state.
// Exposed for callers that re-derive footprints or replay explored paths
// (the oracle's reduction checker, the commutation property test).
func (e *Explorer) NewRootSystem() *ioa.System { return e.rootSys.CloneBare() }
