package valence

import (
	"bytes"
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// TestDeltaEncodeSteadyStateAllocs pins the parallel explorer's per-node
// encode path: when an edge qualifies for the pure splice — the owner's
// post-fire segment and every accepting candidate's post-input segment can
// be rendered by the PostFire/PostInputEncoder fast paths — deltaEncode
// assembles the child encoding with zero heap allocations once the worker's
// scratch buffers have grown to size.  (Edges that fall back to a throwaway
// clone pay for the clone by design; the fleet-wide win is that send and
// deliver steps, which dominate the ~830k-node graphs, never do.)
func TestDeltaEncodeSteadyStateAllocs(t *testing.T) {
	e, err := New(Config{N: 2, Family: afd.FamilyP, Algo: "s", TD: PerfectTD(2, 4, nil)})
	if err != nil {
		t.Fatal(err)
	}
	sys := e.rootSys.CloneBare()
	p := &parExplorer{e: e}
	ws := &wstate{}
	var scratch, enc []byte

	// pureSplice reports whether firing act at owner avoids every clone
	// fallback, by dry-running the same optional-interface probes
	// deltaEncode performs.  In this composition that is the send steps:
	// the owning process pops its outbox (machine untouched) and the
	// accepting reliable channel enqueues the payload.  Deliveries run the
	// receiving machine, so they fall back by contract.
	autos := sys.Automata()
	pureSplice := func(owner int, act ioa.Action) bool {
		pf, ok := autos[owner].(ioa.PostFireEncoder)
		if !ok {
			return false
		}
		if scratch, ok = pf.AppendEncodePostFire(act, scratch[:0]); !ok {
			return false
		}
		ws.cands = sys.DeliveryCandidates(act, ws.cands)
		for _, ci := range ws.cands {
			if ci == owner || !autos[ci].Accepts(act) {
				continue
			}
			pi, ok := autos[ci].(ioa.PostInputEncoder)
			if !ok {
				return false
			}
			if scratch, ok = pi.AppendEncodePostInput(act, scratch[:0]); !ok {
				return false
			}
		}
		return true
	}

	// Walk a short execution prefix; at every state along it, measure each
	// pure-splice edge.  (A single deep state won't do: sends drain as the
	// walk advances, so the interesting edges appear mid-prefix.)
	measured := 0
	for step := 0; step < 8; step++ {
		enc = sys.AppendEncode(enc[:0])
		var clean bool
		ws.segs, clean = splitSegs(enc, len(autos), ws.segs)
		if !clean {
			t.Fatalf("step %d: state does not segment cleanly: %q", step, enc)
		}
		for _, tr := range e.tasks {
			act, ok := sys.Enabled(tr)
			if !ok || !pureSplice(tr.Auto, act) {
				continue
			}
			measured++
			owner := tr.Auto
			for warm := 0; warm < 2; warm++ {
				ws.buf = p.deltaEncode(enc, sys, ws, owner, act)
			}
			// The splice must be byte-identical to the clone path it
			// replaces.
			ref := sys.CloneBare()
			ref.Apply(owner, act)
			if want := ref.AppendEncode(nil); !bytes.Equal(ws.buf, want) {
				t.Fatalf("task %v: delta %q, clone reference %q", tr, ws.buf, want)
			}
			if avg := testing.AllocsPerRun(100, func() {
				ws.buf = p.deltaEncode(enc, sys, ws, owner, act)
			}); avg != 0 {
				t.Errorf("task %v (%v): pure splice allocates %.2f per edge, want 0", tr, act, avg)
			}
		}
		idx, ok := sys.NextReady(-1)
		if !ok {
			break
		}
		sys.ApplyReady(idx)
	}
	if measured == 0 {
		t.Fatal("no pure-splice edge found: the fast path is unreachable on the E10 composition")
	}
}
