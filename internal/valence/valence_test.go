package valence

import (
	"strings"
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
)

func explore(t *testing.T, cfg Config) *Explorer {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Explore(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOmegaTDIsAdmissible(t *testing.T) {
	for _, tc := range []struct {
		n       int
		rounds  int
		crashAt map[ioa.Loc]int
	}{
		{2, 4, nil},
		{3, 5, map[ioa.Loc]int{2: 2}},
		{3, 5, map[ioa.Loc]int{0: 1}}, // leader crash forces a leader change
	} {
		tD := OmegaTD(tc.n, tc.rounds, tc.crashAt)
		if err := (afd.Omega{}).Check(tD, tc.n, afd.DefaultWindow()); err != nil {
			t.Errorf("OmegaTD(%d,%d,%v) not admissible: %v", tc.n, tc.rounds, tc.crashAt, err)
		}
	}
}

// TestTreeN2 explores the full graph for n=2 (f=0), free environment.
func TestTreeN2(t *testing.T) {
	e := explore(t, Config{
		N:      2,
		Family: afd.FamilyOmega,
		TD:     OmegaTD(2, 6, nil),
	})

	// Proposition 51: the root is bivalent.
	if got := e.Valence(e.Root()); got != ValBivalent {
		t.Fatalf("root valence = %v, want bivalent", got)
	}
	// Proposition 48/49 analogue on the finite quotient: every node has a
	// reachable decision.
	st := e.Stats()
	if st.Unknown != 0 {
		t.Fatalf("%d nodes with no reachable decision (tD too weak?)", st.Unknown)
	}
	if st.Nodes < 10 {
		t.Fatalf("suspiciously small graph: %+v", st)
	}

	// Lemma 52 and Proposition 50 hold everywhere.
	if err := e.CheckLemma52(); err != nil {
		t.Error(err)
	}
	if err := e.CheckProposition50(); err != nil {
		t.Error(err)
	}

	// Lemma 55: a hook exists; Theorem 59: every hook verifies.
	hooks := e.FindHooks(0)
	if len(hooks) == 0 {
		t.Fatal("no hooks found (Lemma 55 violated)")
	}
	for _, h := range hooks {
		if err := e.VerifyHook(h); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestTreeN2SWithCrash is the f=1 Theorem 59 scenario at n=2: the S
// algorithm (which tolerates n−1 crashes) driven by a P sequence in which
// location 1 crashes; every hook's critical location must be live (= 0).
func TestTreeN2SWithCrash(t *testing.T) {
	e := explore(t, Config{
		N:      2,
		Family: afd.FamilyP,
		Algo:   "s",
		TD:     PerfectTD(2, 4, map[ioa.Loc]int{1: 1}),
	})
	if got := e.Valence(e.Root()); got != ValBivalent {
		t.Fatalf("root valence = %v, want bivalent", got)
	}
	if st := e.Stats(); st.Unknown != 0 {
		t.Fatalf("%d undecidable nodes", st.Unknown)
	}
	hooks := e.FindHooks(0)
	if len(hooks) == 0 {
		t.Fatal("no hooks found")
	}
	for _, h := range hooks {
		if err := e.VerifyHook(h); err != nil {
			t.Fatalf("%v", err)
		}
		if h.Critical == 1 {
			t.Fatalf("critical location is the faulty location: %v", h)
		}
	}
	if err := e.CheckLemma52(); err != nil {
		t.Error(err)
	}
	if err := e.CheckProposition50(); err != nil {
		t.Error(err)
	}
}

// TestTreeN3WithCrash is the full Theorem 59 scenario: n=3, f=1, location 2
// crashes inside tD; every hook's critical location must be live (≠ 2).
// The hosted algorithm is the churn-free S algorithm of [5], whose
// reachable graph closes at ~230k nodes.
func TestTreeN3WithCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space (~230k nodes, ~20s)")
	}
	// Location 0's proposal is free and controls whether the value 0
	// exists at all (the flooding algorithm decides the minimum), so the
	// root is bivalent; locations 1 and 2 are pinned to 1.  Location 2
	// crashes inside tD, so Theorem 59's liveness claim about critical
	// locations is non-trivial here.
	e := explore(t, Config{
		N:        3,
		Family:   afd.FamilyP,
		Algo:     "s",
		TD:       PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
		Values:   []int{-1, 1, 1},
		MaxNodes: 1_500_000,
	})
	if got := e.Valence(e.Root()); got != ValBivalent {
		t.Fatalf("root valence = %v, want bivalent", got)
	}
	st := e.Stats()
	t.Logf("graph: %+v", st)
	if st.Unknown != 0 {
		t.Fatalf("%d undecidable nodes", st.Unknown)
	}
	hooks := e.FindHooks(500)
	if len(hooks) == 0 {
		t.Fatal("no hooks found")
	}
	for _, h := range hooks {
		if err := e.VerifyHook(h); err != nil {
			t.Fatalf("%v", err)
		}
		if h.Critical == 2 {
			t.Fatalf("critical location is the faulty location: %v", h)
		}
	}
	if err := e.CheckLemma52(); err != nil {
		t.Error(err)
	}
	if err := e.CheckProposition50(); err != nil {
		t.Error(err)
	}
}

// TestHookAtFDMessageRace is the sharpest Theorem-59 scenario: both
// proposals are fixed (1 at location 0, 0 at location 1) and location 1 —
// the holder of the winning minimum value — crashes inside tD.  Bivalence
// then persists past the environment inputs and is resolved only by the
// race between the FD edge (location 0 learns of the crash and stops
// waiting) and the channel edge (location 1's value arrives).  The hook
// must therefore involve the FD edge, and its critical location is the live
// location 0.
func TestHookAtFDMessageRace(t *testing.T) {
	e := explore(t, Config{
		N:      2,
		Family: afd.FamilyP,
		Algo:   "s",
		TD:     PerfectTD(2, 4, map[ioa.Loc]int{1: 1}),
		Values: []int{1, 0},
	})
	if got := e.Valence(e.Root()); got != ValBivalent {
		t.Fatalf("root valence = %v, want bivalent (the race makes both decisions reachable)", got)
	}
	hooks := e.FindHooks(0)
	if len(hooks) == 0 {
		t.Fatal("no hooks found")
	}
	fdHook := false
	for _, h := range hooks {
		if err := e.VerifyHook(h); err != nil {
			t.Fatalf("%v", err)
		}
		if h.Critical != 0 {
			t.Fatalf("critical location %v, want the live location 0: %v", h.Critical, h)
		}
		if h.L == LabelFD || h.R == LabelFD {
			fdHook = true
		}
	}
	if !fdHook {
		t.Fatal("expected a hook involving the FD edge (the crash-information race)")
	}
}

// TestPerfectTDIsAdmissible mirrors TestOmegaTDIsAdmissible for the P
// sequence builder.
func TestPerfectTDIsAdmissible(t *testing.T) {
	for _, tc := range []struct {
		n       int
		rounds  int
		crashAt map[ioa.Loc]int
	}{
		{2, 4, nil},
		{2, 4, map[ioa.Loc]int{1: 1}},
		{3, 3, map[ioa.Loc]int{2: 1, 0: 2}},
	} {
		tD := PerfectTD(tc.n, tc.rounds, tc.crashAt)
		if err := (afd.Perfect{}).Check(tD, tc.n, afd.DefaultWindow()); err != nil {
			t.Errorf("PerfectTD(%d,%d,%v) not admissible: %v", tc.n, tc.rounds, tc.crashAt, err)
		}
	}
}

func TestNewRejectsUnknownAlgo(t *testing.T) {
	if _, err := New(Config{N: 2, Family: afd.FamilyP, Algo: "zzz", TD: PerfectTD(2, 2, nil)}); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

// TestUnanimousRootUnivalent: with fixed unanimous proposals the root is
// univalent for that value (validity pins the decision).
func TestUnanimousRootUnivalent(t *testing.T) {
	for v, want := range map[int]Valence{0: ValZero, 1: ValOne} {
		e := explore(t, Config{
			N:      2,
			Family: afd.FamilyOmega,
			TD:     OmegaTD(2, 6, nil),
			Values: []int{v, v},
		})
		if got := e.Valence(e.Root()); got != want {
			t.Errorf("unanimous %d: root = %v, want %v", v, got, want)
		}
	}
}

// TestBivalencePathTerminates: in the Ω tree the bivalence-preserving
// adversary runs out of bivalent children — the detector forces decisions.
func TestBivalencePathTerminates(t *testing.T) {
	e := explore(t, Config{
		N:      2,
		Family: afd.FamilyOmega,
		TD:     OmegaTD(2, 6, nil),
	})
	length, cyclic := e.BivalencePath()
	if cyclic {
		t.Fatal("bivalent cycle found: the adversary could stall forever despite Ω")
	}
	if length == 0 {
		t.Fatal("no bivalent steps at all; root should be bivalent")
	}
	t.Logf("bivalence-preserving path length: %d", length)
}

func TestExploreCapExceeded(t *testing.T) {
	e, err := New(Config{
		N:        2,
		Family:   afd.FamilyOmega,
		TD:       OmegaTD(2, 6, nil),
		MaxNodes: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Explore(); err == nil {
		t.Fatal("tiny cap must fail exploration")
	}
}

func TestNewRejectsUnknownFamily(t *testing.T) {
	if _, err := New(Config{N: 2, Family: "FD-???", TD: OmegaTD(2, 2, nil)}); err == nil {
		t.Fatal("unknown family must fail")
	}
}

func TestValenceString(t *testing.T) {
	for v, s := range map[Valence]string{
		ValZero: "0-valent", ValOne: "1-valent",
		ValBivalent: "bivalent", ValUnknown: "unknown",
	} {
		if v.String() != s {
			t.Errorf("Valence(%d).String() = %q", v, v.String())
		}
	}
}

func TestLabelName(t *testing.T) {
	e, err := New(Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 2, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if e.LabelName(LabelFD) != "FD" {
		t.Error("FD label name")
	}
	if e.LabelName(0) == "" {
		t.Error("task label name empty")
	}
}

func TestHookStats(t *testing.T) {
	e := explore(t, Config{
		N:      2,
		Family: afd.FamilyP,
		Algo:   "s",
		TD:     PerfectTD(2, 4, map[ioa.Loc]int{1: 1}),
		Values: []int{1, 0},
	})
	hooks := e.FindHooks(0)
	if len(hooks) == 0 {
		t.Fatal("no hooks")
	}
	st := e.HookStats(hooks)
	if st.FDInvolved == 0 {
		t.Error("FD-race scenario must involve the FD edge in some hook")
	}
	if st.ByCritical[0] != len(hooks) {
		t.Errorf("critical distribution %v; all hooks should pivot at live location 0", st.ByCritical)
	}
	total := 0
	for _, c := range st.ByLabelKind {
		total += c
	}
	if total != 2*len(hooks) {
		t.Errorf("label-kind counts %v do not cover both edges of %d hooks", st.ByLabelKind, len(hooks))
	}
}

func TestWriteDOT(t *testing.T) {
	e := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 3, nil)})
	var buf strings.Builder
	if err := e.WriteDOT(&buf, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph rtd {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("malformed DOT output")
	}
	if !strings.Contains(out, "orange") {
		t.Error("bivalent root not colored")
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("FD edges not dashed")
	}
	if strings.Count(out, "\n  n") < 10 {
		t.Error("suspiciously few nodes emitted")
	}
}
