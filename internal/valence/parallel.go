package valence

import (
	"bytes"
	"context"
	"runtime"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// Parallel frontier exploration.
//
// Workers drain per-worker deques (LIFO locally, stealing from the head of
// a victim when empty), expand nodes, and memoize children in a sharded
// index keyed by the collision-checked state hash.  Discovery order is
// scheduling-dependent, so provisional nodes carry no IDs at all; once the
// frontier drains, a serial-BFS renumbering pass walks the recorded edges —
// whose per-node order (FD first, then tasks by ascending label) is
// deterministic — and assigns final NodeIDs in exactly the order the serial
// explorer would have created them.  The flattened tables are therefore
// byte-identical to the serial explorer's at any worker count.
//
// Unlike the serial reference, the parallel engine does not clone the full
// system per edge.  Two structural savings make it cheaper per node even at
// workers=1-equivalent load:
//
//   - Delta encoding: a child's state encoding is the parent's encoding
//     with only the *touched* component segments replaced.  An Apply
//     mutates exactly the owner (Fire) and the accepting delivery
//     candidates (Input) — nothing else — so the child encoding is
//     assembled by cloning those few automata, firing the clones, and
//     splicing their fresh encodings between the parent's untouched
//     segment bytes.  Duplicate children (the common case: the memo hit
//     rate is edges/nodes ≈ 3–4) cost a couple of automaton clones
//     instead of a full System clone + full re-encode.
//
//   - Deferred derivation: a new child enqueues only a derivation recipe
//     (parent node, edge action, owner).  Its System is materialized
//     lazily — one CloneBare+Apply at its own expansion — so each node
//     pays exactly one full clone in its lifetime, and the frontier holds
//     recipes (~100 B) instead of live Systems, collapsing the resident
//     footprint of wide frontiers.  A parent's System is retained until
//     its own expansion and all child derivations have drained
//     (refcounted), then released.
//
// Delta encoding trusts the parent's segment boundaries, which are found
// by scanning for ioa.EncSep.  A clean k-automaton encoding contains
// exactly k−1 separator bytes; if a component encoding ever contained the
// separator the count would exceed k−1, and that node's expansion falls
// back to the full clone-and-encode path (splices *into* such an encoding
// are still byte-correct — segments are only ever copied verbatim or
// replaced whole — so correctness never depends on the fallback firing).

const shardBits = 7 // 128 shards

// pnode is a provisionally discovered node: identity is the pointer until
// renumbering assigns the final NodeID.
type pnode struct {
	enc   []byte // interned encoding (chunk-stable, see shardArena)
	fd    int32
	final int32 // final NodeID; -1 until renumbered

	// Derivation recipe: sys is nil until expansion for delta-discovered
	// nodes, and derived then as parent.sys.CloneForApply+Apply(powner, pact).
	// Nodes discovered on the fallback path carry sys directly.
	parent *pnode
	pact   ioa.Action
	powner int32

	// Creation chain, immutable once the node is published: the first
	// parent to discover the node, the edge action, and its owner.  Unlike
	// the recipe above (cleared after derivation), the chain survives so a
	// node forced to re-expand by the reduction's proviso rounds can
	// re-derive its System by replaying root→node applies (walking cparent
	// links only — never a mid-chain sys, which other workers may race on).
	cparent *pnode
	cact    ioa.Action
	cowner  int32

	// Reduction bookkeeping (meaningful only under Config.Reduce).
	full      bool  // last expansion covered every enabled step
	forceFull bool  // proviso rounds demand full expansion
	site      int16 // ample site chosen at this node's expansion; -1 = full
	pruned    int32 // steps pruned at this node's last expansion

	// kids is the retain count of sys: 1 for the node's own expansion plus
	// one per child still waiting to derive from it.
	kids atomic.Int32

	sys   *ioa.System
	edges []pedge // out-edges in deterministic per-node order
}

type pedge struct {
	label Label
	act   ioa.Action
	to    *pnode
}

// shardArena interns encodings in fixed chunks so stored slices stay valid
// as more bytes arrive (append-grow would reallocate under readers).
type shardArena struct {
	cur []byte
}

func (a *shardArena) put(b []byte) []byte {
	if cap(a.cur)-len(a.cur) < len(b) {
		size := 1 << 20
		if len(b) > size {
			size = len(b)
		}
		a.cur = make([]byte, 0, size)
	}
	start := len(a.cur)
	a.cur = append(a.cur, b...)
	return a.cur[start:len(a.cur):len(a.cur)]
}

// shard is one lock stripe of the concurrent memo index.
type shard struct {
	mu    sync.Mutex
	index map[uint64][]*pnode
	arena shardArena
}

// wdeque is one worker's frontier deque.  The owner pushes and pops at the
// tail (LIFO keeps parent→child chains local, so a child usually derives
// while its parent's System is cache-warm); thieves take a batch from the
// head, the oldest — hence shallowest, largest-subtree — nodes.
type wdeque struct {
	mu    sync.Mutex
	items []*pnode
}

func (d *wdeque) pushBatch(ns []*pnode) {
	d.mu.Lock()
	d.items = append(d.items, ns...)
	d.mu.Unlock()
}

func (d *wdeque) popTail() *pnode {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	it := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	d.mu.Unlock()
	return it
}

// stealHalf moves roughly half the deque (from the head) into out and
// returns the extended slice.
func (d *wdeque) stealHalf(out []*pnode) []*pnode {
	d.mu.Lock()
	n := len(d.items)
	if n == 0 {
		d.mu.Unlock()
		return out
	}
	take := (n + 1) / 2
	out = append(out, d.items[:take]...)
	rest := copy(d.items, d.items[take:])
	for i := rest; i < n; i++ {
		d.items[i] = nil
	}
	d.items = d.items[:rest]
	d.mu.Unlock()
	return out
}

type parExplorer struct {
	e      *Explorer
	shards []shard
	deques []wdeque
	work   atomic.Int64 // nodes created but not yet expanded (termination)
	nodes  atomic.Int64
	edges  atomic.Int64
	cancel atomic.Bool

	// Reduction counters (Config.Reduce only).
	reducedN  atomic.Int64
	prunedN   atomic.Int64
	sleepN    atomic.Int64
	poisonedN atomic.Int64

	errOnce sync.Once
	err     error // published by errOnce, read after workers join

	progMu   sync.Mutex
	progNext int64
}

// wstate is one worker's scratch: reused buffers so the steady-state
// expansion allocates only the automaton clones the delta encoder fires.
type wstate struct {
	id     int
	buf    []byte   // child encoding assembly
	segs   []int    // parent segment start offsets (k+1 entries)
	cands  []int    // DeliveryCandidates scratch
	kidsNw []*pnode // children discovered by the current expansion
	loot   []*pnode // steal batch scratch
	amp    ampleScratch
	chain  []*pnode // creation-chain replay scratch (re-expansion)
}

func (p *parExplorer) fail(err error) {
	p.errOnce.Do(func() { p.err = err })
	p.cancel.Store(true)
}

func (e *Explorer) exploreParallel(workers int) error {
	p := &parExplorer{
		e:        e,
		shards:   make([]shard, 1<<shardBits),
		deques:   make([]wdeque, workers),
		progNext: int64(e.cfg.progressEvery()),
	}
	for i := range p.shards {
		p.shards[i].index = make(map[uint64][]*pnode)
	}

	root := e.rootSys.CloneBare()
	buf := root.AppendEncode(nil)
	h := stateHash(buf, 0)
	sh := &p.shards[h>>(64-shardBits)]
	rn := &pnode{enc: sh.arena.put(buf), final: -1, powner: -1, cowner: -1, site: -1, sys: root}
	rn.kids.Store(1)
	sh.index[h] = append(sh.index[h], rn)
	p.nodes.Store(1)
	p.work.Store(1)
	if tel := e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValenceNodes, 1) // the root; link() counts the rest
	}
	p.deques[0].items = []*pnode{rn}

	for {
		p.runWorkers(workers)
		if p.err != nil {
			return p.err
		}
		if e.red == nil {
			break
		}
		forced, done := p.reduceAnalyze(rn)
		if done {
			break
		}
		p.queueReexpand(forced)
	}
	if e.cfg.Progress != nil {
		if !e.cfg.Progress(Progress{Nodes: p.nodes.Load(), Edges: p.edges.Load(), Done: true}) {
			return ErrCanceled
		}
	}
	e.redStats.reduced = p.reducedN.Load()
	e.redStats.pruned = p.prunedN.Load()
	e.redStats.sleep = p.sleepN.Load()
	e.redStats.poisoned = p.poisonedN.Load()
	if e.red == nil {
		e.renumber(rn, int(p.nodes.Load()), int(p.edges.Load()))
	}
	return nil
}

// runWorkers drains the deques with a fresh worker pool and joins it.
func (p *parExplorer) runWorkers(workers int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p.worker(id)
		}(i)
	}
	wg.Wait()
}

// reduceAnalyze runs one proviso analysis round over the drained graph: it
// renumbers (deterministic serial-BFS IDs over the current edge set), then
// collects reduced nodes that violate a proviso —
//
//	cycle proviso: a reduced node on a task-edge cycle could postpone an
//	enabled outside step forever; force it full so every cycle in the final
//	graph contains a fully expanded node (classic ignoring-problem fix);
//
//	bivalent completeness: hook-finding (Lemmas 53–58) quantifies over *all*
//	enabled steps of bivalent nodes, so every bivalent node must be fully
//	expanded; forcing them full can make new nodes bivalent, hence the
//	fixpoint loop.
//
// Cycle forcing runs to exhaustion before any valence is computed (masks on
// a cyclic reduced graph could under-approximate reachability of decides).
// When nothing is forced the tables and masks are final: done=true and the
// engine skips the usual post-exploration propagate.
func (p *parExplorer) reduceAnalyze(root *pnode) (forced []*pnode, done bool) {
	e := p.e
	e.redStats.rounds++
	if tel := e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValenceReduceRounds, 1)
	}
	order := e.renumber(root, int(p.nodes.Load()), int(p.edges.Load()))
	for _, id := range e.taskCycleNodes() {
		if pn := order[id]; !pn.full && !pn.forceFull {
			pn.forceFull = true
			forced = append(forced, pn)
		}
	}
	if len(forced) > 0 {
		e.redStats.forcedCycle += len(forced)
		resetFinals(order)
		return forced, false
	}
	e.propagate()
	for id, pn := range order {
		if !pn.full && maskToValence(e.mask[id]) == ValBivalent {
			pn.forceFull = true
			forced = append(forced, pn)
		}
	}
	if len(forced) == 0 {
		e.propagated = true // masks just computed are final
		e.fullbit = make([]bool, len(order))
		for id, pn := range order {
			e.fullbit[id] = pn.full
		}
		// Sleep-set hits: a reduced child reached from a reduced parent
		// with the same ample cluster re-suppresses exactly the steps the
		// parent's sleep set suppressed (a same-site fire touches none of
		// them).  Computed here — not during expansion — so the count is a
		// function of the final graph, identical at every worker count.
		var sleep int64
		inherited := make([]bool, len(order))
		for id, pn := range order {
			if pn.full {
				continue
			}
			for k := e.estart[id]; k < e.estart[id+1]; k++ {
				to := e.edges[k].To
				tn := order[to]
				if !tn.full && tn.site == pn.site && !inherited[to] {
					inherited[to] = true
					sleep += int64(tn.pruned)
				}
			}
		}
		p.sleepN.Store(sleep)
		if tel := e.cfg.Telemetry; tel != nil {
			tel.Count(telemetry.CValenceSleepHits, sleep)
		}
		return nil, true
	}
	e.redStats.forcedBiv += len(forced)
	resetFinals(order)
	return forced, false
}

func resetFinals(order []*pnode) {
	for _, pn := range order {
		pn.final = -1
	}
}

// queueReexpand rewinds each forced node to unexpanded — edges cleared and
// their counts (and the node's pruned count) rolled back — and requeues it.
// The node's System is re-derived at expansion by replaying its creation
// chain from the root.
func (p *parExplorer) queueReexpand(forced []*pnode) {
	for _, pn := range forced {
		p.edges.Add(-int64(len(pn.edges)))
		pn.edges = pn.edges[:0]
		p.prunedN.Add(-int64(pn.pruned))
		pn.pruned = 0
		p.reducedN.Add(-1)
		pn.parent = nil
		pn.sys = nil
		pn.kids.Store(1)
	}
	p.work.Add(int64(len(forced)))
	per := (len(forced) + len(p.deques) - 1) / len(p.deques)
	for i := 0; i < len(p.deques); i++ {
		lo := i * per
		if lo >= len(forced) {
			break
		}
		hi := lo + per
		if hi > len(forced) {
			hi = len(forced)
		}
		p.deques[i].pushBatch(forced[lo:hi])
	}
}

// worker drains its own deque tail-first and steals from peers when empty.
// Exploration is over when the global work count (created-but-unexpanded
// nodes) reaches zero: at that point every deque is empty and no expansion
// that could push more is in flight.  Each worker's lifetime is a
// runtime/trace region; with a telemetry sink attached it additionally
// records per-expansion spans on virtual thread id+1 and accumulates busy
// time for the utilization metric (CWorkerBusyNs / (GValenceWorkers × wall)).
func (p *parExplorer) worker(id int) {
	defer rtrace.StartRegion(context.Background(), "valence.worker").End()
	tel := p.e.cfg.Telemetry
	ws := &wstate{id: id}
	idle := 0
	for {
		if p.cancel.Load() {
			return
		}
		n := p.deques[id].popTail()
		if n == nil {
			n = p.steal(ws)
		}
		if n == nil {
			if p.work.Load() == 0 {
				return
			}
			// Someone is still expanding and may publish work; back off
			// politely (poll, no condvar: the publish side is lock-light
			// and wakeups would cost more than the naps).
			if idle++; idle < 8 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		idle = 0
		if tel != nil {
			t0 := tel.Now()
			p.expand(n, ws)
			tel.Count(telemetry.CWorkerBusyNs, tel.Now()-t0)
			tel.Count(telemetry.CValenceExpansions, 1)
			tel.Span(telemetry.CatValence, "expand", t0, int32(id+1), int64(len(n.edges)))
		} else {
			p.expand(n, ws)
		}
		p.work.Add(-1)
	}
}

// steal takes a batch from the first non-empty peer deque, keeps the batch
// on the worker's own deque, and returns one node to expand.
func (p *parExplorer) steal(ws *wstate) *pnode {
	for off := 1; off < len(p.deques); off++ {
		victim := (ws.id + off) % len(p.deques)
		ws.loot = p.deques[victim].stealHalf(ws.loot[:0])
		if len(ws.loot) == 0 {
			continue
		}
		n := ws.loot[len(ws.loot)-1]
		if rest := ws.loot[:len(ws.loot)-1]; len(rest) > 0 {
			p.deques[ws.id].pushBatch(rest)
		}
		return n
	}
	return nil
}

// release drops one retain of n.sys; the last drop frees the System.
func (p *parExplorer) release(n *pnode) {
	if n.kids.Add(-1) == 0 {
		n.sys = nil
	}
}

// deriveSys materializes n's System.  Delta-discovered nodes replay their
// recipe against the parent's retained System: a CloneForApply shares every
// automaton the recipe's event doesn't touch with the parent — systems form
// a persistent structure along tree edges, and each is frozen once derived
// (expansion only reads), which is exactly CloneForApply's soundness
// condition.  The root and fallback-path nodes already carry a System.
func (p *parExplorer) deriveSys(n *pnode, ws *wstate) *ioa.System {
	if n.sys != nil {
		return n.sys
	}
	if n.parent == nil {
		return p.replayChain(n, ws)
	}
	owner := int(n.powner)
	psys := n.parent.sys
	ws.cands = psys.DeliveryCandidates(n.pact, ws.cands)
	sys := psys.CloneForApply(owner, n.pact, ws.cands)
	sys.Apply(owner, n.pact)
	p.release(n.parent)
	n.sys = sys
	return sys
}

// replayChain re-derives the System of a node rewound for re-expansion by
// the proviso rounds: replay the creation chain's applies from a fresh root
// clone.  Only the immutable chain fields (cparent/cact/cowner) are read —
// a mid-chain ancestor's sys may be owned by another worker.
func (p *parExplorer) replayChain(n *pnode, ws *wstate) *ioa.System {
	ws.chain = ws.chain[:0]
	for m := n; m.cparent != nil; m = m.cparent {
		ws.chain = append(ws.chain, m)
	}
	sys := p.e.rootSys.CloneBare()
	for i := len(ws.chain) - 1; i >= 0; i-- {
		sys.Apply(int(ws.chain[i].cowner), ws.chain[i].cact)
	}
	n.sys = sys
	return sys
}

// splitSegs records the k+1 segment start offsets of enc into ws.segs and
// reports whether enc splits cleanly into exactly k automaton segments
// (segment i is enc[segs[i] : segs[i+1]-1], the last runs to len(enc)).
func splitSegs(enc []byte, k int, segs []int) ([]int, bool) {
	segs = append(segs[:0], 0)
	for off := 0; ; {
		i := bytes.IndexByte(enc[off:], ioa.EncSep)
		if i < 0 {
			break
		}
		off += i + 1
		segs = append(segs, off)
	}
	segs = append(segs, len(enc)+1)
	return segs, len(segs) == k+1
}

// expand mirrors the serial expansion exactly: FD edge first, then tasks in
// label order; ⊥ edges omitted.  Children are published to the local deque
// in one batch after the node's System is no longer being read.
func (p *parExplorer) expand(n *pnode, ws *wstate) {
	sys := p.deriveSys(n, ws)
	if p.cancel.Load() {
		p.release(n)
		return
	}
	autos := sys.Automata()
	var delta bool
	ws.segs, delta = splitSegs(n.enc, len(autos), ws.segs)
	ws.kidsNw = ws.kidsNw[:0]
	fd := int(n.fd)
	if red := p.e.red; red != nil && !n.forceFull {
		sel, verdict := red.selectAmple(sys, fd, &ws.amp)
		if verdict == amplePoisoned {
			p.poisonedN.Add(1)
		}
		if verdict == ampleReduced {
			p.expandAmple(n, sys, ws, delta, fd, sel)
			return
		}
	}
	n.full = true
	n.site = -1
	if fd < len(p.e.cfg.TD) {
		act := p.e.cfg.TD[fd]
		p.edge(n, sys, ws, delta, LabelFD, -1, act, fd+1)
	}
	for li, tr := range p.e.tasks {
		if p.cancel.Load() {
			break
		}
		act, ok := sys.Enabled(tr)
		if !ok {
			continue
		}
		p.edge(n, sys, ws, delta, Label(li), tr.Auto, act, fd)
	}
	p.release(n)
	if len(ws.kidsNw) > 0 {
		p.deques[ws.id].pushBatch(ws.kidsNw)
		if tel := p.e.cfg.Telemetry; tel != nil {
			f := p.work.Load()
			tel.SetGauge(telemetry.GValenceFrontier, f)
			tel.GaugeMax(telemetry.GValenceFrontierPeak, f)
		}
	}
}

// expandAmple expands only the selected ample cluster: the FD edge when the
// next TD event occurs at the cluster's site, then the cluster's tasks in
// ascending label order — a deterministic per-node order, so renumbering
// stays byte-identical at any worker count.  The pruned steps form the
// node's sleep set; children that keep the parent's cluster inherit it
// wholesale (every step suppressed here is the same step, untouched by a
// same-site fire, that their own selection suppresses again) — counted as
// sleep-set hits by the final analysis pass, where the parent→child edges
// are known deterministically.
func (p *parExplorer) expandAmple(n *pnode, sys *ioa.System, ws *wstate, delta bool, fd int, sel ampleSel) {
	n.full = false
	n.site = sel.site
	if sel.fdEdge {
		act := p.e.cfg.TD[fd]
		p.edge(n, sys, ws, delta, LabelFD, -1, act, fd+1)
	}
	for _, ti := range sel.tasks {
		if p.cancel.Load() {
			break
		}
		p.edge(n, sys, ws, delta, Label(ti), p.e.tasks[ti].Auto, sys.ReadyAction(int(ti)), fd)
	}
	n.pruned = sel.pruned
	p.prunedN.Add(int64(sel.pruned))
	p.reducedN.Add(1)
	if tel := p.e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValencePruned, int64(sel.pruned))
		tel.Observe(telemetry.HAmpleSize, int64(sel.total-sel.pruned))
	}
	p.release(n)
	if len(ws.kidsNw) > 0 {
		p.deques[ws.id].pushBatch(ws.kidsNw)
		if tel := p.e.cfg.Telemetry; tel != nil {
			f := p.work.Load()
			tel.SetGauge(telemetry.GValenceFrontier, f)
			tel.GaugeMax(telemetry.GValenceFrontierPeak, f)
		}
	}
}

// edge computes the child encoding for one out-edge — via the delta splice
// when the parent's segmentation is trusted, else by full clone — and links
// it.  New delta children are recipes; new fallback children carry the
// cloned System directly.
func (p *parExplorer) edge(n *pnode, sys *ioa.System, ws *wstate, delta bool, l Label, owner int, act ioa.Action, fd int) {
	if delta {
		ws.buf = p.deltaEncode(n.enc, sys, ws, owner, act)
		p.link(n, ws, l, act, int32(owner), fd, nil)
		return
	}
	child := sys.CloneBare()
	child.Apply(owner, act)
	ws.buf = child.AppendEncode(ws.buf[:0])
	p.link(n, ws, l, act, int32(owner), fd, child)
}

// deltaEncode assembles the child encoding for firing act (owner fires,
// accepting delivery candidates consume) by splicing re-encoded touched
// segments into the parent's untouched bytes.  Touched automata are cloned
// and fired individually; applyWith mutates nothing else, so every other
// segment is copied verbatim from the parent.
func (p *parExplorer) deltaEncode(penc []byte, sys *ioa.System, ws *wstate, owner int, act ioa.Action) []byte {
	autos := sys.Automata()
	ws.cands = sys.DeliveryCandidates(act, ws.cands)
	buf := ws.buf[:0]
	ci := 0
	for si, k := 0, len(autos); si < k; si++ {
		if si > 0 {
			buf = append(buf, ioa.EncSep)
		}
		inCands := false
		for ci < len(ws.cands) && ws.cands[ci] < si {
			ci++
		}
		if ci < len(ws.cands) && ws.cands[ci] == si {
			inCands = true
			ci++
		}
		switch {
		case si == owner:
			buf = appendPostFire(buf, autos[si], act)
		case inCands && autos[si].Accepts(act):
			buf = appendPostInput(buf, autos[si], act)
		default:
			buf = append(buf, penc[ws.segs[si]:ws.segs[si+1]-1]...)
		}
	}
	return buf
}

// appendPostFire appends a's post-Fire(act) encoding: directly when the
// automaton can render it (queue-pop fires never move the hosted machine),
// else by firing a throwaway clone.
func appendPostFire(dst []byte, a ioa.Automaton, act ioa.Action) []byte {
	if pf, ok := a.(ioa.PostFireEncoder); ok {
		if out, ok := pf.AppendEncodePostFire(act, dst); ok {
			return out
		}
	}
	c := a.Clone()
	c.Fire(act)
	return appendAuto(dst, c)
}

// appendPostInput is the input-side analogue of appendPostFire.
func appendPostInput(dst []byte, a ioa.Automaton, act ioa.Action) []byte {
	if pi, ok := a.(ioa.PostInputEncoder); ok {
		if out, ok := pi.AppendEncodePostInput(act, dst); ok {
			return out
		}
	}
	c := a.Clone()
	c.Input(act)
	return appendAuto(dst, c)
}

func appendAuto(dst []byte, a ioa.Automaton) []byte {
	if ae, ok := a.(ioa.AppendEncoder); ok {
		return ae.AppendEncode(dst)
	}
	return append(dst, a.Encode()...)
}

// link records an edge from n to the node for (ws.buf, fd), creating the
// child if its key is new.  childSys is nil on the delta path (the new
// child stores a derivation recipe and retains n.sys) and the materialized
// System on the fallback path.
func (p *parExplorer) link(n *pnode, ws *wstate, l Label, act ioa.Action, owner int32, fd int, childSys *ioa.System) {
	buf := ws.buf
	h := stateHash(buf, fd)
	sh := &p.shards[h>>(64-shardBits)]
	sh.mu.Lock()
	var to *pnode
	for _, cand := range sh.index[h] {
		if int(cand.fd) == fd && bytes.Equal(cand.enc, buf) {
			to = cand
			break
		}
	}
	if to == nil {
		created := p.nodes.Add(1)
		if created > int64(p.e.cfg.maxNodes()) {
			sh.mu.Unlock()
			p.fail(&ErrStateSpaceCap{Cap: p.e.cfg.maxNodes(), Nodes: int(created - 1)})
			return
		}
		to = &pnode{enc: sh.arena.put(buf), fd: int32(fd), final: -1, powner: owner, sys: childSys}
		to.kids.Store(1)
		to.cparent = n
		to.cact = act
		to.cowner = owner
		to.site = -1
		if childSys == nil {
			to.parent = n
			to.pact = act
			n.kids.Add(1)
		}
		sh.index[h] = append(sh.index[h], to)
		sh.mu.Unlock()
		p.work.Add(1)
		ws.kidsNw = append(ws.kidsNw, to)
		if tel := p.e.cfg.Telemetry; tel != nil {
			tel.Count(telemetry.CValenceNodes, 1)
		}
		p.maybeProgress(created)
	} else {
		sh.mu.Unlock()
	}
	n.edges = append(n.edges, pedge{label: l, act: act, to: to})
	p.edges.Add(1)
	if tel := p.e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValenceEdges, 1)
	}
}

// maybeProgress serializes Progress callbacks across workers; a false return
// cancels the whole exploration.
func (p *parExplorer) maybeProgress(created int64) {
	if p.e.cfg.Progress == nil {
		return
	}
	p.progMu.Lock()
	if created < p.progNext {
		p.progMu.Unlock()
		return
	}
	p.progNext = created + int64(p.e.cfg.progressEvery())
	ok := p.e.cfg.Progress(Progress{Nodes: created, Edges: p.edges.Load()})
	p.progMu.Unlock()
	if !ok {
		p.fail(ErrCanceled)
	}
}

// renumber assigns final NodeIDs by serial BFS over the recorded edges and
// flattens the provisional graph into the explorer's SoA tables.  Because
// each node's edge list is in deterministic order and the serial explorer
// assigns IDs in exactly first-touch BFS order, the result is identical to
// a serial exploration.  The BFS order is returned so the reduction's
// analysis rounds can map NodeIDs back to pnodes (and reset them); callers
// re-renumbering must resetFinals first.
func (e *Explorer) renumber(root *pnode, nNodes, nEdges int) []*pnode {
	order := make([]*pnode, 0, nNodes)
	root.final = 0
	order = append(order, root)
	for i := 0; i < len(order); i++ {
		for _, ed := range order[i].edges {
			if ed.to.final < 0 {
				ed.to.final = int32(len(order))
				order = append(order, ed.to)
			}
		}
	}
	n := len(order)
	e.fdIdx = make([]int32, n)
	e.mask = make([]uint8, n)
	e.estart = make([]int64, n+1)
	e.edges = make([]Edge, 0, nEdges)
	// Adopt the interned encodings where they already live (the shard
	// arena chunks): one slice header per node, zero byte traffic.
	e.encs = make([][]byte, n)
	for i, pn := range order {
		e.fdIdx[i] = pn.fd
		e.encs[i] = pn.enc
		e.estart[i] = int64(len(e.edges))
		for _, ed := range pn.edges {
			e.edges = append(e.edges, Edge{Label: ed.label, Act: ed.act, To: NodeID(ed.to.final)})
		}
	}
	e.estart[n] = int64(len(e.edges))
	return order
}

// Parallel valence fixpoints.
//
// Both propagations are monotone over the mask lattice, so the least
// fixpoint is unique and any evaluation order converges to it — the
// round-based solvers below therefore produce exactly the serial worklist's
// masks.  Each round partitions nodes into contiguous ranges; a node's mask
// is written only by the worker owning its range (single-writer), and
// cross-range reads go through atomics, so the solver is race-free.

// runRounds drives per-range sweeps until a full round changes nothing.
// Each round is one CFixpointRounds count and one valence-category span
// (named by the caller, arg = round number) when a sink is attached.
func runRounds(n, workers int, tel telemetry.Sink, name string, sweep func(lo, hi int) bool) {
	chunk := (n + workers - 1) / workers
	round := int64(0)
	for {
		round++
		var t0 int64
		if tel != nil {
			t0 = tel.Now()
		}
		var changed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				if sweep(lo, hi) {
					changed.Store(true)
				}
			}(lo, hi)
		}
		wg.Wait()
		if tel != nil {
			tel.Count(telemetry.CFixpointRounds, 1)
			tel.Span(telemetry.CatValence, name, t0, 0, round)
		}
		if !changed.Load() {
			return
		}
	}
}

func (e *Explorer) propagateFutureParallel(r *reverse, workers int) {
	n := len(e.fdIdx)
	masks := make([]uint32, n)
	// Sweep descending: successors typically carry higher IDs, so within a
	// round most reads already see this round's values and long forward
	// chains collapse into few rounds.
	runRounds(n, workers, e.cfg.Telemetry, "fixpoint-future", func(lo, hi int) bool {
		changed := false
		for id := hi - 1; id >= lo; id-- {
			m := atomic.LoadUint32(&masks[id])
			nm := m
			for k := e.estart[id]; k < e.estart[id+1]; k++ {
				nm |= uint32(r.ebit[k]) | atomic.LoadUint32(&masks[e.edges[k].To])
			}
			if nm != m {
				atomic.StoreUint32(&masks[id], nm)
				changed = true
			}
		}
		return changed
	})
	for i := 0; i < n; i++ {
		e.mask[i] = uint8(masks[i])
	}
}

func (e *Explorer) propagatePastParallel(r *reverse, workers int) {
	n := len(e.fdIdx)
	past := make([]uint32, n)
	// Sweep ascending over the reverse CSR: predecessors typically carry
	// lower IDs, the mirror argument of the future sweep.
	runRounds(n, workers, e.cfg.Telemetry, "fixpoint-past", func(lo, hi int) bool {
		changed := false
		for id := lo; id < hi; id++ {
			m := atomic.LoadUint32(&past[id])
			nm := m
			for k := r.start[id]; k < r.start[id+1]; k++ {
				nm |= uint32(r.bit[k]) | atomic.LoadUint32(&past[r.pred[k]])
			}
			if nm != m {
				atomic.StoreUint32(&past[id], nm)
				changed = true
			}
		}
		return changed
	})
	for i := 0; i < n; i++ {
		e.mask[i] |= uint8(past[i])
	}
}
