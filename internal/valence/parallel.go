package valence

import (
	"bytes"
	"context"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"

	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// Parallel frontier exploration.
//
// Workers pop nodes off a shared frontier, expand them (clone + apply per
// enabled edge, exactly as the serial path), and memoize children in a
// sharded index keyed by the collision-checked state hash.  Discovery order
// is scheduling-dependent, so provisional nodes carry no IDs at all; once
// the frontier drains, a serial-BFS renumbering pass walks the recorded
// edges — whose per-node order (FD first, then tasks by ascending label) is
// deterministic — and assigns final NodeIDs in exactly the order the serial
// explorer would have created them.  The flattened tables are therefore
// byte-identical to the serial explorer's at any worker count.

const shardBits = 7 // 128 shards

// pnode is a provisionally discovered node: identity is the pointer until
// renumbering assigns the final NodeID.
type pnode struct {
	enc   []byte // interned encoding (chunk-stable, see shardArena)
	fd    int32
	final int32       // final NodeID; -1 until renumbered
	sys   *ioa.System // retained until expanded
	edges []pedge     // out-edges in deterministic per-node order
}

type pedge struct {
	label Label
	act   ioa.Action
	to    *pnode
}

// shardArena interns encodings in fixed chunks so stored slices stay valid
// as more bytes arrive (append-grow would reallocate under readers).
type shardArena struct {
	cur []byte
}

func (a *shardArena) put(b []byte) []byte {
	if cap(a.cur)-len(a.cur) < len(b) {
		size := 1 << 20
		if len(b) > size {
			size = len(b)
		}
		a.cur = make([]byte, 0, size)
	}
	start := len(a.cur)
	a.cur = append(a.cur, b...)
	return a.cur[start:len(a.cur):len(a.cur)]
}

// shard is one lock stripe of the concurrent memo index.
type shard struct {
	mu    sync.Mutex
	index map[uint64][]*pnode
	arena shardArena
}

// pqueue is the shared frontier: LIFO (reduces resident frontier size;
// order is irrelevant thanks to renumbering) with inflight-count
// termination detection.
type pqueue struct {
	mu       sync.Mutex
	cond     sync.Cond
	items    []*pnode
	inflight int
	stopped  bool
	tel      telemetry.Sink // frontier-width gauges, nil when telemetry is off
}

func (q *pqueue) push(n *pnode) {
	q.mu.Lock()
	q.items = append(q.items, n)
	if q.tel != nil {
		f := int64(len(q.items))
		q.tel.SetGauge(telemetry.GValenceFrontier, f)
		q.tel.GaugeMax(telemetry.GValenceFrontierPeak, f)
	}
	q.cond.Signal()
	q.mu.Unlock()
}

// pop blocks until an item is available; returns false when exploration is
// over (frontier empty with no expansion in flight, or stopped).
func (q *pqueue) pop() (*pnode, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.stopped {
			return nil, false
		}
		if n := len(q.items); n > 0 {
			it := q.items[n-1]
			q.items = q.items[:n-1]
			q.inflight++
			if q.tel != nil {
				q.tel.SetGauge(telemetry.GValenceFrontier, int64(n-1))
			}
			return it, true
		}
		if q.inflight == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
}

func (q *pqueue) finish() {
	q.mu.Lock()
	q.inflight--
	if q.inflight == 0 && len(q.items) == 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

func (q *pqueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

type parExplorer struct {
	e      *Explorer
	shards []shard
	queue  pqueue
	nodes  atomic.Int64
	edges  atomic.Int64
	cancel atomic.Bool

	errOnce sync.Once
	err     error // published by errOnce, read after workers join

	progMu   sync.Mutex
	progNext int64
}

func (p *parExplorer) fail(err error) {
	p.errOnce.Do(func() { p.err = err })
	p.cancel.Store(true)
	p.queue.stop()
}

func (e *Explorer) exploreParallel(workers int) error {
	p := &parExplorer{
		e:        e,
		shards:   make([]shard, 1<<shardBits),
		progNext: int64(e.cfg.progressEvery()),
	}
	for i := range p.shards {
		p.shards[i].index = make(map[uint64][]*pnode)
	}
	p.queue.cond.L = &p.queue.mu
	p.queue.tel = e.cfg.Telemetry

	root := e.rootSys.CloneBare()
	buf := root.AppendEncode(nil)
	h := stateHash(buf, 0)
	sh := &p.shards[h>>(64-shardBits)]
	rn := &pnode{enc: sh.arena.put(buf), final: -1, sys: root}
	sh.index[h] = append(sh.index[h], rn)
	p.nodes.Store(1)
	if tel := e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValenceNodes, 1) // the root; link() counts the rest
	}
	p.queue.push(rn)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p.worker(id)
		}(i)
	}
	wg.Wait()
	if p.err != nil {
		return p.err
	}
	if e.cfg.Progress != nil {
		if !e.cfg.Progress(Progress{Nodes: p.nodes.Load(), Edges: p.edges.Load(), Done: true}) {
			return ErrCanceled
		}
	}
	e.renumber(rn, int(p.nodes.Load()), int(p.edges.Load()))
	return nil
}

// worker drains the frontier.  Each worker's lifetime is a runtime/trace
// region, so a `go test -trace` / pprof capture shows the pool's shape; with
// a telemetry sink attached it additionally records per-expansion spans on
// virtual thread id+1 and accumulates busy time for the utilization metric
// (CWorkerBusyNs / (GValenceWorkers × wall)).
func (p *parExplorer) worker(id int) {
	defer rtrace.StartRegion(context.Background(), "valence.worker").End()
	tel := p.e.cfg.Telemetry
	var buf []byte
	for {
		n, ok := p.queue.pop()
		if !ok {
			return
		}
		if tel != nil {
			t0 := tel.Now()
			buf = p.expand(n, buf)
			tel.Count(telemetry.CWorkerBusyNs, tel.Now()-t0)
			tel.Count(telemetry.CValenceExpansions, 1)
			tel.Span(telemetry.CatValence, "expand", t0, int32(id+1), int64(len(n.edges)))
		} else {
			buf = p.expand(n, buf)
		}
		p.queue.finish()
	}
}

// expand mirrors the serial expansion exactly: FD edge first, then tasks in
// label order; ⊥ edges omitted.
func (p *parExplorer) expand(n *pnode, buf []byte) []byte {
	sys := n.sys
	n.sys = nil
	if p.cancel.Load() {
		return buf
	}
	if fd := int(n.fd); fd < len(p.e.cfg.TD) {
		act := p.e.cfg.TD[fd]
		child := sys.CloneBare()
		child.Apply(-1, act)
		buf = p.link(n, LabelFD, act, child, fd+1, buf)
	}
	for li, tr := range p.e.tasks {
		if p.cancel.Load() {
			return buf
		}
		act, ok := sys.Enabled(tr)
		if !ok {
			continue
		}
		child := sys.CloneBare()
		child.Apply(tr.Auto, act)
		buf = p.link(n, Label(li), act, child, int(n.fd), buf)
	}
	return buf
}

func (p *parExplorer) link(from *pnode, l Label, act ioa.Action, child *ioa.System, fd int, buf []byte) []byte {
	buf = child.AppendEncode(buf[:0])
	h := stateHash(buf, fd)
	sh := &p.shards[h>>(64-shardBits)]
	sh.mu.Lock()
	var to *pnode
	for _, cand := range sh.index[h] {
		if int(cand.fd) == fd && bytes.Equal(cand.enc, buf) {
			to = cand
			break
		}
	}
	if to == nil {
		created := p.nodes.Add(1)
		if created > int64(p.e.cfg.maxNodes()) {
			sh.mu.Unlock()
			p.fail(&ErrStateSpaceCap{Cap: p.e.cfg.maxNodes(), Nodes: int(created - 1)})
			return buf
		}
		to = &pnode{enc: sh.arena.put(buf), fd: int32(fd), final: -1, sys: child}
		sh.index[h] = append(sh.index[h], to)
		sh.mu.Unlock()
		p.queue.push(to)
		if tel := p.e.cfg.Telemetry; tel != nil {
			tel.Count(telemetry.CValenceNodes, 1)
		}
		p.maybeProgress(created)
	} else {
		sh.mu.Unlock()
	}
	from.edges = append(from.edges, pedge{label: l, act: act, to: to})
	p.edges.Add(1)
	if tel := p.e.cfg.Telemetry; tel != nil {
		tel.Count(telemetry.CValenceEdges, 1)
	}
	return buf
}

// maybeProgress serializes Progress callbacks across workers; a false return
// cancels the whole exploration.
func (p *parExplorer) maybeProgress(created int64) {
	if p.e.cfg.Progress == nil {
		return
	}
	p.progMu.Lock()
	if created < p.progNext {
		p.progMu.Unlock()
		return
	}
	p.progNext = created + int64(p.e.cfg.progressEvery())
	ok := p.e.cfg.Progress(Progress{Nodes: created, Edges: p.edges.Load()})
	p.progMu.Unlock()
	if !ok {
		p.fail(ErrCanceled)
	}
}

// renumber assigns final NodeIDs by serial BFS over the recorded edges and
// flattens the provisional graph into the explorer's SoA tables.  Because
// each node's edge list is in deterministic order and the serial explorer
// assigns IDs in exactly first-touch BFS order, the result is identical to
// a serial exploration.
func (e *Explorer) renumber(root *pnode, nNodes, nEdges int) {
	order := make([]*pnode, 0, nNodes)
	root.final = 0
	order = append(order, root)
	for i := 0; i < len(order); i++ {
		for _, ed := range order[i].edges {
			if ed.to.final < 0 {
				ed.to.final = int32(len(order))
				order = append(order, ed.to)
			}
		}
	}
	n := len(order)
	e.fdIdx = make([]int32, n)
	e.mask = make([]uint8, n)
	e.encOff = make([]int64, n)
	e.encLen = make([]int32, n)
	e.estart = make([]int64, n+1)
	e.edges = make([]Edge, 0, nEdges)
	var total int
	for _, pn := range order {
		total += len(pn.enc)
	}
	e.arena = make([]byte, 0, total)
	for i, pn := range order {
		e.fdIdx[i] = pn.fd
		e.encOff[i] = int64(len(e.arena))
		e.encLen[i] = int32(len(pn.enc))
		e.arena = append(e.arena, pn.enc...)
		e.estart[i] = int64(len(e.edges))
		for _, ed := range pn.edges {
			e.edges = append(e.edges, Edge{Label: ed.label, Act: ed.act, To: NodeID(ed.to.final)})
		}
	}
	e.estart[n] = int64(len(e.edges))
}

// Parallel valence fixpoints.
//
// Both propagations are monotone over the mask lattice, so the least
// fixpoint is unique and any evaluation order converges to it — the
// round-based solvers below therefore produce exactly the serial worklist's
// masks.  Each round partitions nodes into contiguous ranges; a node's mask
// is written only by the worker owning its range (single-writer), and
// cross-range reads go through atomics, so the solver is race-free.

// runRounds drives per-range sweeps until a full round changes nothing.
// Each round is one CFixpointRounds count and one valence-category span
// (named by the caller, arg = round number) when a sink is attached.
func runRounds(n, workers int, tel telemetry.Sink, name string, sweep func(lo, hi int) bool) {
	chunk := (n + workers - 1) / workers
	round := int64(0)
	for {
		round++
		var t0 int64
		if tel != nil {
			t0 = tel.Now()
		}
		var changed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				if sweep(lo, hi) {
					changed.Store(true)
				}
			}(lo, hi)
		}
		wg.Wait()
		if tel != nil {
			tel.Count(telemetry.CFixpointRounds, 1)
			tel.Span(telemetry.CatValence, name, t0, 0, round)
		}
		if !changed.Load() {
			return
		}
	}
}

func (e *Explorer) propagateFutureParallel(r *reverse, workers int) {
	n := len(e.fdIdx)
	masks := make([]uint32, n)
	// Sweep descending: successors typically carry higher IDs, so within a
	// round most reads already see this round's values and long forward
	// chains collapse into few rounds.
	runRounds(n, workers, e.cfg.Telemetry, "fixpoint-future", func(lo, hi int) bool {
		changed := false
		for id := hi - 1; id >= lo; id-- {
			m := atomic.LoadUint32(&masks[id])
			nm := m
			for k := e.estart[id]; k < e.estart[id+1]; k++ {
				nm |= uint32(r.ebit[k]) | atomic.LoadUint32(&masks[e.edges[k].To])
			}
			if nm != m {
				atomic.StoreUint32(&masks[id], nm)
				changed = true
			}
		}
		return changed
	})
	for i := 0; i < n; i++ {
		e.mask[i] = uint8(masks[i])
	}
}

func (e *Explorer) propagatePastParallel(r *reverse, workers int) {
	n := len(e.fdIdx)
	past := make([]uint32, n)
	// Sweep ascending over the reverse CSR: predecessors typically carry
	// lower IDs, the mirror argument of the future sweep.
	runRounds(n, workers, e.cfg.Telemetry, "fixpoint-past", func(lo, hi int) bool {
		changed := false
		for id := lo; id < hi; id++ {
			m := atomic.LoadUint32(&past[id])
			nm := m
			for k := r.start[id]; k < r.start[id+1]; k++ {
				nm |= uint32(r.bit[k]) | atomic.LoadUint32(&past[r.pred[k]])
			}
			if nm != m {
				atomic.StoreUint32(&past[id], nm)
				changed = true
			}
		}
		return changed
	})
	for i := 0; i < n; i++ {
		e.mask[i] |= uint8(past[i])
	}
}
