package valence

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// tablesEqual asserts every observable table of two explored graphs is
// byte-identical: node count, FD tags, valence masks, per-node interned
// encodings, and the full edge arena (labels, action tags, targets, CSR
// offsets).  Encodings are compared per node (the NodeEncoding contract):
// the serial and parallel explorers intern bytes in different arenas.
func tablesEqual(t *testing.T, ref, got *Explorer) {
	t.Helper()
	if len(ref.fdIdx) != len(got.fdIdx) {
		t.Fatalf("node count: ref %d, got %d", len(ref.fdIdx), len(got.fdIdx))
	}
	for i := range ref.fdIdx {
		if ref.fdIdx[i] != got.fdIdx[i] {
			t.Fatalf("node %d: fdIdx ref %d, got %d", i, ref.fdIdx[i], got.fdIdx[i])
		}
		if ref.mask[i] != got.mask[i] {
			t.Fatalf("node %d: mask ref %b, got %b", i, ref.mask[i], got.mask[i])
		}
		if !bytes.Equal(ref.nodeEnc(NodeID(i)), got.nodeEnc(NodeID(i))) {
			t.Fatalf("node %d: encoding ref %q, got %q",
				i, ref.nodeEnc(NodeID(i)), got.nodeEnc(NodeID(i)))
		}
	}
	if len(ref.edges) != len(got.edges) {
		t.Fatalf("edge count: ref %d, got %d", len(ref.edges), len(got.edges))
	}
	for k := range ref.edges {
		if ref.edges[k] != got.edges[k] {
			t.Fatalf("edge %d: ref %+v, got %+v", k, ref.edges[k], got.edges[k])
		}
	}
	for i := range ref.estart {
		if ref.estart[i] != got.estart[i] {
			t.Fatalf("estart[%d]: ref %d, got %d", i, ref.estart[i], got.estart[i])
		}
	}
}

// TestParallelMatchesSerial is the determinism contract of the parallel
// engine: for each configuration (two tD variants × two system configs) the
// parallel explorer's full node/edge/valence tables must be byte-identical
// to the serial reference, at several worker counts.
func TestParallelMatchesSerial(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"omega n=2 free", Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 6, nil)}},
		{"omega n=2 crash", Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 6, map[ioa.Loc]int{1: 2})}},
		{"perfect s n=2 free", Config{N: 2, Family: afd.FamilyP, Algo: "s", TD: PerfectTD(2, 4, nil)}},
		{"perfect s n=2 crash", Config{N: 2, Family: afd.FamilyP, Algo: "s", TD: PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.cfg
			serial.Workers = 1
			ref := explore(t, serial)
			for _, w := range []int{2, 8} {
				par := tc.cfg
				par.Workers = w
				got := explore(t, par)
				tablesEqual(t, ref, got)
				// The derived reports must match too.
				if ref.Stats() != got.Stats() {
					t.Fatalf("workers=%d: stats ref %+v, got %+v", w, ref.Stats(), got.Stats())
				}
				rh, gh := ref.FindHooks(25), got.FindHooks(25)
				if len(rh) != len(gh) {
					t.Fatalf("workers=%d: hook count ref %d, got %d", w, len(rh), len(gh))
				}
				for i := range rh {
					if rh[i] != gh[i] {
						t.Fatalf("workers=%d: hook %d ref %v, got %v", w, i, rh[i], gh[i])
					}
				}
				var rd, gd bytes.Buffer
				if err := ref.WriteDOT(&rd, 500); err != nil {
					t.Fatal(err)
				}
				if err := got.WriteDOT(&gd, 500); err != nil {
					t.Fatal(err)
				}
				if rd.String() != gd.String() {
					t.Fatalf("workers=%d: DOT output differs", w)
				}
			}
		})
	}
}

// TestGoldenStats pins the structural invariants of the four experiment
// configurations (E10–E11): any change to exploration order, memoization, or
// valence propagation that alters the explored graph fails here.
func TestGoldenStats(t *testing.T) {
	golden := []struct {
		name  string
		cfg   Config
		nodes int
		edges int
		biv   int
		fd    int
	}{
		{"n=2 free", Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 6, nil)},
			1105, 2632, 91, 1020},
		{"n=2 free, short tD", Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 3, nil)},
			595, 1378, 49, 510},
		{"n=2 S-algo, crash 1", Config{N: 2, Family: afd.FamilyP, Algo: "s",
			TD: PerfectTD(2, 4, map[ioa.Loc]int{1: 1})},
			1617, 3468, 77, 1216},
		{"n=3 S-algo, crash 2", Config{N: 3, Family: afd.FamilyP, Algo: "s",
			TD:     PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
			Values: []int{-1, 1, 1}, MaxNodes: 1_500_000},
			230890, 828706, 496, 50942},
	}
	for _, tc := range golden {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.N >= 3 && testing.Short() {
				// The delta-encoding engine makes the ~830k-node graph
				// affordable in -short — but only off the serial reference
				// path, so pin a worker pool instead of skipping.
				tc.cfg.Workers = 4
			}
			e := explore(t, tc.cfg)
			st := e.Stats()
			if st.Nodes != tc.nodes || st.Edges != tc.edges ||
				st.Bivalent != tc.biv || st.FDEdges != tc.fd {
				t.Fatalf("stats drifted: got Nodes=%d Edges=%d Bivalent=%d FDEdges=%d, "+
					"want Nodes=%d Edges=%d Bivalent=%d FDEdges=%d",
					st.Nodes, st.Edges, st.Bivalent, st.FDEdges,
					tc.nodes, tc.edges, tc.biv, tc.fd)
			}
		})
	}
}

// TestStateSpaceCapTyped checks satellite semantics of the cap: the error is
// the typed *ErrStateSpaceCap, carries the partial count, and fires as nodes
// are created — a graph with exactly cap nodes succeeds.
func TestStateSpaceCapTyped(t *testing.T) {
	for _, w := range []int{1, 4} {
		e, err := New(Config{
			N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 6, nil),
			MaxNodes: 5, Workers: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = e.Explore()
		var cap *ErrStateSpaceCap
		if !errors.As(err, &cap) {
			t.Fatalf("workers=%d: error = %v, want *ErrStateSpaceCap", w, err)
		}
		if cap.Cap != 5 || cap.Nodes < 5 {
			t.Fatalf("workers=%d: cap error = %+v, want Cap=5, Nodes>=5", w, cap)
		}
	}
	// A cap equal to the true graph size must succeed.
	ref := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 3, nil), Workers: 1})
	exact := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 3, nil),
		MaxNodes: ref.NumNodes(), Workers: 1})
	if exact.NumNodes() != ref.NumNodes() {
		t.Fatalf("exact-cap exploration found %d nodes, want %d", exact.NumNodes(), ref.NumNodes())
	}
}

// TestProgressHook checks the Progress callback fires, is monotone, delivers
// a final Done report, and cancels the exploration when it returns false.
func TestProgressHook(t *testing.T) {
	for _, w := range []int{1, 4} {
		var calls, last int64
		var sawDone bool
		e, err := New(Config{
			N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 6, nil),
			Workers: w, ProgressEvery: 100,
			Progress: func(p Progress) bool {
				calls++
				if p.Nodes < last {
					t.Errorf("workers=%d: progress went backwards: %d after %d", w, p.Nodes, last)
				}
				last = p.Nodes
				if p.Done {
					sawDone = true
				}
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Explore(); err != nil {
			t.Fatal(err)
		}
		if calls < 2 || !sawDone {
			t.Fatalf("workers=%d: calls=%d sawDone=%v, want several calls ending in Done", w, calls, sawDone)
		}
	}
}

func TestProgressCancel(t *testing.T) {
	for _, w := range []int{1, 4} {
		var fired atomic.Bool
		e, err := New(Config{
			N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 6, nil),
			Workers: w, ProgressEvery: 50,
			Progress: func(p Progress) bool {
				fired.Store(true)
				return false
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Explore(); !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: error = %v, want ErrCanceled", w, err)
		}
		if !fired.Load() {
			t.Fatalf("workers=%d: progress hook never fired", w)
		}
	}
}
