package valence

// Partial-order reduction for the valence explorer: ample-set selection
// clustered by action location, derived statically from the composition's
// routing index (ioa.SigKey ownership — see ioa.Sites) plus the tagged FD
// event sequence.  See DESIGN.md §13 for the soundness argument; the short
// version:
//
//   - Steps are clustered by the location λ(act) at which their action
//     occurs.  Two steps at different locations are independent — they write
//     disjoint automata — with a single exception: a send at i appending to
//     the FIFO channel chan[i>j] and a delivery at j popping it.  That pair
//     still commutes byte-exactly whenever the delivery is enabled (the
//     append cannot change the head of a nonempty ring, and the pop cannot
//     touch the sender's outbox), which is the only situation ample-set
//     persistence ever needs.
//
//   - An ample cluster at location m is eligible only when (A) no later FD
//     event of the tagged sequence occurs at m (the FD edge itself may join
//     the ample set when the *next* event is at m), (B) every cross-location
//     automaton firing into m (in this codebase: FIFO channels chan[k>m])
//     either has all of its tasks enabled or has a provably silent writer
//     side — no location that could ever send on it is live or wakeable,
//     computed as a closure over static input→fire wake edges — and (C) no
//     enabled cluster step is visible, i.e. outputs to the environment
//     (decide actions are the only actions the valence verdicts observe;
//     crashes and FD outputs arrive via the FD edge and are never task
//     steps).  The cycle proviso and bivalent-region completeness are
//     enforced post hoc by the engine's analysis rounds (parallel.go), which
//     force-re-expand any reduced node on a task-edge cycle or with a
//     bivalent verdict until a fixpoint.
//
// Eligibility is a pure function of (system state, fd index), so every
// worker — at any Config.Workers — makes the same choice at the same node
// and the renumbered tables stay byte-identical.

import (
	"errors"
	"fmt"

	"repro/internal/ioa"
)

// maxReduceLocs bounds Config.N under reduction: the wake/suffix sets are
// uint64 location bitmasks.
const maxReduceLocs = 64

// reduceInfo is the static (per-composition, per-TD) reduction metadata.
// It is immutable after New and shared read-only by all workers.
type reduceInfo struct {
	n     int            // locations 0..n-1
	sites []ioa.SiteInfo // per automaton

	// taskSite[t] is the fire site of the automaton owning flattened task t:
	// the location every action enabled on t must occur at (re-checked
	// dynamically; mismatch poisons the node back to full expansion).
	taskSite []int16

	// crossAutos[m] lists the automata that fire into m from elsewhere
	// (Input != Fire == m) — the channels whose heads outside steps could
	// create.  Condition (B) inspects their task readiness.
	crossAutos [][]crossAuto

	// recvAcc[m] are the automata a cross-location delivery at m writes
	// besides its own channel (the KindReceive acceptors — processes).
	// When every one of them is quiescent (ioa.QuiescentReporter: final
	// state, inputs absorbed byte-identically), condition (B) is skipped:
	// a delivery enabled later by an outside send then touches only its
	// own channel, so it is independent of every ample step.
	recvAcc [][]int32

	// localAutos[k] are the automata sited entirely at k (Input == Fire).
	// They are the only possible emitters of KindSend actions at k — a
	// KindSend-keyed automaton (a channel) fires only receives, per the
	// convention Sites encodes — so when every one of them is quiescent,
	// no channel out of k can ever grow again: an empty chan[k>m] stays
	// empty forever and cannot gate condition (B).  Quiescence is stable
	// under future inputs (the capability's contract), so this holds along
	// every outside path, FD events included.
	localAutos [][]int32

	// wake[k] is the transitively closed set of locations reachable from k
	// via static input→fire edges: if location k can act, any location in
	// wake[k] may eventually act too.  Used to decide that a channel's
	// writer side is provably silent.
	wake []uint64

	// suffix[f] is the set of locations at which TD events f.. occur
	// (suffix[len(TD)] = 0).  tdLoc[f] is TD[f]'s location, or -1 when the
	// event has no concrete location (reduction then falls back to full
	// expansion at nodes with that fd).
	suffix []uint64
	tdLoc  []int16

	// tFirst/tLast give automaton ai's flattened task range [tFirst, tLast)
	// (tFirst = -1 when it has none); used to decide whether an automaton
	// without prospect capabilities could fire at all.
	tFirst []int32
	tLast  []int32
}

// crossAuto is one automaton firing into a cluster from outside.
type crossAuto struct {
	in     int16 // writer location (the automaton's input site)
	t0, t1 int32 // its flattened task range [t0, t1)
}

// buildReduceInfo derives the reduction metadata, or an error when the
// composition does not admit location clustering (wildcard routing, unsited
// automata) — Config.Reduce then fails loudly at New rather than silently
// exploring the full tree.
func buildReduceInfo(sys *ioa.System, cfg Config) (*reduceInfo, error) {
	sites, ok := sys.Sites()
	if !ok {
		return nil, errors.New("valence: composition does not admit reduction (wildcard or multi-location automata)")
	}
	n := cfg.N
	if n <= 0 || n > maxReduceLocs {
		return nil, fmt.Errorf("valence: reduction supports 1..%d locations, got %d", maxReduceLocs, n)
	}
	r := &reduceInfo{n: n, sites: sites}
	for ai, st := range sites {
		if int(st.Input) >= n || int(st.Fire) >= n {
			return nil, fmt.Errorf("valence: automaton %d sited outside 0..%d (input %d, fire %d)", ai, n-1, st.Input, st.Fire)
		}
	}

	// Flattened task → fire site, and per-automaton task ranges.
	tasks := sys.Tasks()
	r.taskSite = make([]int16, len(tasks))
	first := make([]int32, len(sites))
	last := make([]int32, len(sites))
	for i := range first {
		first[i] = -1
	}
	for ti, tr := range tasks {
		r.taskSite[ti] = int16(sites[tr.Auto].Fire)
		if first[tr.Auto] < 0 {
			first[tr.Auto] = int32(ti)
		}
		last[tr.Auto] = int32(ti) + 1
	}
	r.tFirst, r.tLast = first, last

	// Cross-location automata per fire site, local automata per site, and
	// static wake edges.
	r.crossAutos = make([][]crossAuto, n)
	r.localAutos = make([][]int32, n)
	adj := make([]uint64, n) // input site → fire sites it can wake
	for ai, st := range sites {
		adj[st.Input] |= 1 << uint(st.Fire)
		if st.Fire == st.Input {
			r.localAutos[st.Fire] = append(r.localAutos[st.Fire], int32(ai))
		}
		if st.Fire != st.Input {
			if first[ai] < 0 {
				// An automaton with no tasks never fires; it cannot gate a
				// cluster (nothing it would ever do), so skip it.
				continue
			}
			r.crossAutos[st.Fire] = append(r.crossAutos[st.Fire], crossAuto{
				in: int16(st.Input), t0: first[ai], t1: last[ai],
			})
		}
	}
	r.recvAcc = make([][]int32, n)
	for m, accs := range sys.ReceiveAcceptors(n) {
		for _, ai := range accs {
			r.recvAcc[m] = append(r.recvAcc[m], int32(ai))
		}
	}

	// Transitive closure of the wake relation (n ≤ 64, so this is cheap).
	for changed := true; changed; {
		changed = false
		for k := 0; k < n; k++ {
			m := adj[k]
			b := m
			for j := 0; j < n; j++ {
				if m&(1<<uint(j)) != 0 {
					b |= adj[j]
				}
			}
			if b != m {
				adj[k] = b
				changed = true
			}
		}
	}
	r.wake = adj

	// TD suffix location sets.
	r.suffix = make([]uint64, len(cfg.TD)+1)
	r.tdLoc = make([]int16, len(cfg.TD))
	for f := len(cfg.TD) - 1; f >= 0; f-- {
		m := r.suffix[f+1]
		l := cfg.TD[f].Loc
		if int(l) < 0 || int(l) >= n || cfg.TD[f].Kind == ioa.KindEnvOut {
			// Unsited TD event — or a visible one smuggled into a hand-built
			// sequence — blocks every cluster below it.
			r.tdLoc[f] = -1
			m = ^uint64(0)
		} else {
			r.tdLoc[f] = int16(l)
			m |= 1 << uint(l)
		}
		r.suffix[f] = m
	}
	return r, nil
}

// ampleVerdict is the outcome of ample selection at one node.
type ampleVerdict uint8

const (
	ampleFull     ampleVerdict = iota // no eligible proper cluster: expand fully
	ampleReduced                      // expand only the selected cluster
	amplePoisoned                     // site contract violated: expand fully, count it
)

// ampleSel is a selected ample set: the ready tasks of one location cluster,
// plus possibly the FD edge when the next TD event occurs there.
type ampleSel struct {
	tasks  []int32 // ready flattened tasks of the chosen site (aliases scratch)
	site   int16
	fdEdge bool  // the FD edge is part of the ample set
	pruned int32 // enabled steps not expanded at this node
	total  int32 // all enabled steps (tasks + FD edge) at this node
}

// ampleScratch is per-worker scratch for selectAmple, including the lazily
// computed per-node site prospects (what each location could still fire
// without receiving further inputs) and the per-cluster input-capability
// fixpoint.
type ampleScratch struct {
	siteTasks [][]int32
	fbuf      []int

	haveSite bool     // pendSend/pendFeed/canSend valid for this node
	pendSend []uint64 // per site: destination mask of queued sends
	pendFeed []bool   // per site: queued non-send action feeds a live local
	canSend  []bool   // per site: a local could emit fresh sends on input
	inputCap []bool   // per cluster: fixpoint, see inputCapFix
}

// selectAmple picks the ample set at a node, as a pure function of the
// system state and fd index.  Verdicts:
//
//	ampleReduced — sel holds a proper eligible cluster (strictly fewer steps
//	               than full expansion); chosen as the smallest eligible
//	               cluster, ties broken by lowest location, so the choice is
//	               deterministic across workers.
//	ampleFull    — no proper cluster is eligible; expand everything.
//	amplePoisoned — some enabled action does not occur at its task's derived
//	               fire site: the static site claim failed, fall back to
//	               full expansion (soundness is preserved, reduction is lost
//	               at this node; counted so the oracle can flag it).
func (r *reduceInfo) selectAmple(sys *ioa.System, fd int, sc *ampleScratch) (ampleSel, ampleVerdict) {
	n := r.n
	if sc.siteTasks == nil {
		sc.siteTasks = make([][]int32, n)
		sc.pendSend = make([]uint64, n)
		sc.pendFeed = make([]bool, n)
		sc.canSend = make([]bool, n)
		sc.inputCap = make([]bool, n)
	}
	for m := range sc.siteTasks {
		sc.siteTasks[m] = sc.siteTasks[m][:0]
	}
	sc.haveSite = false

	// Bucket ready tasks by site, re-verifying the site claim and checking
	// visibility (environment outputs are the actions verdicts observe).
	// recvSeed collects the sites where an enabled delivery would write a
	// still-live acceptor — the ready-now seeds of the inputCap fixpoint.
	total := int32(0)
	var readyMask, visMask, recvSeed uint64
	for ti := range r.taskSite {
		if !sys.TaskReady(ti) {
			continue
		}
		total++
		m := r.taskSite[ti]
		act := sys.ReadyAction(ti)
		if int16(act.Loc) != m {
			return ampleSel{}, amplePoisoned
		}
		if act.Kind == ioa.KindEnvOut {
			visMask |= 1 << uint(m)
		}
		if act.Kind == ioa.KindReceive && !r.acceptorsQuiescent(sys, int(m)) {
			recvSeed |= 1 << uint(m)
		}
		sc.siteTasks[m] = append(sc.siteTasks[m], int32(ti))
		readyMask |= 1 << uint(m)
	}

	hasFD := fd < len(r.tdLoc)
	fdLoc := int16(-1)
	if hasFD {
		fdLoc = r.tdLoc[fd]
		if fdLoc < 0 {
			return ampleSel{}, ampleFull // unsited TD event: cannot cluster here
		}
	}
	totalSteps := total
	if hasFD {
		totalSteps++
	}
	if totalSteps == 0 {
		return ampleSel{}, ampleFull // terminal node
	}

	// mayAct: locations that can act now or be woken transitively — ready
	// sites, sites of pending TD events, and everything their fires reach.
	mayAct := readyMask | r.suffix[fd]
	closed := mayAct
	for k := 0; k < n; k++ {
		if mayAct&(1<<uint(k)) != 0 {
			closed |= r.wake[k] // wake is transitively closed: one pass
		}
	}
	mayAct = closed

	best := ampleSel{}
	bestSize := totalSteps
	found := false
	for m := 0; m < n; m++ {
		size := int32(len(sc.siteTasks[m]))
		fdHere := hasFD && fdLoc == int16(m)
		if fdHere {
			size++
		}
		if size == 0 || size >= bestSize {
			continue // C0, or no improvement over the current choice
		}
		// (C) visibility: no enabled cluster step outputs to the environment.
		if visMask&(1<<uint(m)) != 0 {
			continue
		}
		// (A) the TD suffix beyond the ample set must avoid m: a later FD
		// event at m would be reordered across deferred outside steps.
		// When the next event joins the ample set (fdHere) the check is
		// vacuous: the fd index only advances through FD edges, so no TD
		// event at all can fire on an ample-free path.
		if !fdHere && r.suffix[fd]&(1<<uint(m)) != 0 {
			continue
		}
		// sfxFix is the location mask of TD events outside paths can still
		// fire — empty when the FD edge is ample (see above).
		sfxFix := r.suffix[fd]
		if fdHere {
			sfxFix = 0
		}
		// (B) cross-location automata firing into m: either every task is
		// already enabled (outside steps can only append behind the heads
		// the cluster consumes), or the writer side is provably silent.
		// The whole condition is moot when every delivery acceptor at m is
		// quiescent — deliveries enabled later touch only their channel.
		if !r.acceptorsQuiescent(sys, m) {
			ok := true
			refined := false
			for _, ca := range r.crossAutos[m] {
				allReady := true
				for t := ca.t0; t < ca.t1; t++ {
					if !sys.TaskReady(int(t)) {
						allReady = false
						break
					}
				}
				if allReady {
					continue
				}
				// The writer side is silent when nothing can act or wake
				// there, or when every possible send emitter at ca.in is
				// permanently quiescent (the channel can never grow, so
				// its missing steps never exist).
				k := int(ca.in)
				if mayAct&(1<<uint(k)) == 0 || r.allQuiescent(sys, r.localAutos[k]) {
					continue
				}
				// Refined silence: consult what the writer site could
				// actually still fire.  It can append to chan[k>m] on an
				// ample-free path only if a send toward m is already queued
				// there, or a future input could reach its live locals and
				// make them emit one (the inputCap fixpoint).
				if !sc.haveSite {
					r.siteProspects(sys, sc)
					sc.haveSite = true
				}
				if !refined {
					r.inputCapFix(sys, sc, m, sfxFix|recvSeed)
					refined = true
				}
				if sc.pendSend[k]&(1<<uint(m)) != 0 ||
					(sc.inputCap[k] && sc.canSend[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
		}
		best = ampleSel{tasks: sc.siteTasks[m], site: int16(m), fdEdge: fdHere}
		bestSize = size
		found = true
	}
	if !found {
		return ampleSel{}, ampleFull
	}
	best.pruned = totalSteps - bestSize
	best.total = totalSteps
	return best, ampleReduced
}

// acceptorsQuiescent reports whether every delivery acceptor at site m is
// in a final, input-absorbing state (there must be at least one acceptor —
// no acceptors would mean the site metadata missed the delivery targets).
func (r *reduceInfo) acceptorsQuiescent(sys *ioa.System, m int) bool {
	if len(r.recvAcc[m]) == 0 {
		return false
	}
	return r.allQuiescent(sys, r.recvAcc[m])
}

// allQuiescent reports whether every listed automaton is permanently
// quiescent (ioa.QuiescentReporter; non-implementers are never quiescent).
func (r *reduceInfo) allQuiescent(sys *ioa.System, idx []int32) bool {
	autos := sys.Automata()
	for _, ai := range idx {
		q, ok := autos[ai].(ioa.QuiescentReporter)
		if !ok || !q.Quiescent() {
			return false
		}
	}
	return true
}

// siteProspects fills the per-site prospect tables for the current node:
// which destinations each site has sends queued toward (pendSend), whether a
// queued non-send action would write a still-live co-located automaton
// (pendFeed), and whether any local automaton could emit a fresh send in
// response to a future input (canSend — queued sends are pendSend's
// destination-precise business).  Automata without the prospect
// capabilities are handled conservatively — anything they could fire is
// unknown, so if they have a ready task they might send anywhere and feed
// anyone; if they are frozen (no ready task, and by the no-input premise no
// way to gain one) they contribute nothing queued.
func (r *reduceInfo) siteProspects(sys *ioa.System, sc *ampleScratch) {
	autos := sys.Automata()
	for k := 0; k < r.n; k++ {
		sc.pendSend[k] = 0
		sc.pendFeed[k] = false
		sc.canSend[k] = false
		for _, ai := range r.localAutos[k] {
			a := autos[ai]
			if q, ok := a.(ioa.QuiescentReporter); ok && q.Quiescent() {
				continue
			}
			if sp, ok := a.(ioa.SendProspector); ok {
				if sp.CanSend() {
					sc.canSend[k] = true
				}
			} else {
				sc.canSend[k] = true
			}
			pp, ok := a.(ioa.PendingProspect)
			if !ok {
				ready := false
				for t := r.tFirst[ai]; t >= 0 && t < r.tLast[ai]; t++ {
					if sys.TaskReady(int(t)) {
						ready = true
						break
					}
				}
				if ready {
					sc.pendSend[k] = ^uint64(0)
					sc.pendFeed[k] = true
				}
				continue
			}
			pp.PendingProspects(func(act ioa.Action) bool {
				if act.Kind == ioa.KindSend {
					if int(act.Peer) >= 0 && int(act.Peer) < r.n {
						sc.pendSend[k] |= 1 << uint(act.Peer)
					} else {
						sc.pendSend[k] = ^uint64(0) // out of range: assume any
					}
					return true
				}
				if !sc.pendFeed[k] {
					sc.fbuf = sys.ActionFootprint(-1, act, sc.fbuf)
					for _, ti := range sc.fbuf {
						q, ok := autos[ti].(ioa.QuiescentReporter)
						if !ok || !q.Quiescent() {
							sc.pendFeed[k] = true
							break
						}
					}
				}
				return true
			})
		}
	}
}

// inputCapFix computes, for candidate cluster m, the least fixpoint of
// "locals at k can receive a state-changing input along some ample-free
// path".  Seeds: the seed mask (TD events outside paths can still fire,
// plus sites with an enabled delivery into live acceptors — pre-filtered or
// re-filtered here by local liveness), sites whose queued local actions feed
// a live co-located automaton, and deliveries from sends already queued at
// other outside sites.  Propagation: a site that can receive an input and
// hosts a possible sender may send anywhere, enabling deliveries at every
// other outside site with live acceptors.  Site m never participates — its
// steps are exactly the ample set the paths exclude.
func (r *reduceInfo) inputCapFix(sys *ioa.System, sc *ampleScratch, m int, seed uint64) {
	n := r.n
	for k := 0; k < n; k++ {
		sc.inputCap[k] = false
		if k == m {
			continue
		}
		if seed&(1<<uint(k)) != 0 && !r.allQuiescent(sys, r.localAutos[k]) {
			sc.inputCap[k] = true
			continue
		}
		if sc.pendFeed[k] {
			sc.inputCap[k] = true
		}
	}
	for k := 0; k < n; k++ {
		if k == m {
			continue
		}
		mask := sc.pendSend[k]
		for j := 0; j < n; j++ {
			if j == m || j == k || sc.inputCap[j] || mask&(1<<uint(j)) == 0 {
				continue
			}
			if !r.acceptorsQuiescent(sys, j) {
				sc.inputCap[j] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for k := 0; k < n; k++ {
			if k == m || !sc.inputCap[k] || !sc.canSend[k] {
				continue
			}
			for j := 0; j < n; j++ {
				if j == m || j == k || sc.inputCap[j] {
					continue
				}
				if !r.acceptorsQuiescent(sys, j) {
					sc.inputCap[j] = true
					changed = true
				}
			}
		}
	}
}

// taskCycleNodes returns the IDs of every node lying on a directed cycle of
// task edges in the renumbered tables (FD edges strictly increase the fd tag
// and cannot close a cycle, so they are skipped).  Used by the engine's
// cycle proviso: a reduced node on such a cycle could defer an enabled step
// forever, so it is forced to full expansion.  Iterative Tarjan SCC; nodes
// in nontrivial SCCs, plus self-loops, are reported.
func (e *Explorer) taskCycleNodes() []NodeID {
	n := len(e.fdIdx)
	if n == 0 {
		return nil
	}
	index := make([]int32, n) // 0 = unvisited, else order+1
	low := make([]int32, n)
	onStack := make([]bool, n)
	stack := make([]int32, 0, 1024)
	type frame struct {
		v  int32
		ei int64 // next edge offset within [estart[v], estart[v+1])
	}
	frames := make([]frame, 0, 1024)
	var out []NodeID
	next := int32(0)

	for s := 0; s < n; s++ {
		if index[s] != 0 {
			continue
		}
		frames = append(frames[:0], frame{v: int32(s), ei: e.estart[s]})
		next++
		index[s] = next
		low[s] = next
		stack = append(stack, int32(s))
		onStack[s] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < e.estart[v+1] {
				ed := e.edges[f.ei]
				f.ei++
				if ed.Label == LabelFD {
					continue
				}
				w := int32(ed.To)
				if index[w] == 0 {
					next++
					index[w] = next
					low[w] = next
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, ei: e.estart[w]})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is complete: pop its SCC if it is a root.
			if low[v] == index[v] {
				// Collect the SCC; report members iff it is nontrivial or v
				// has a task self-loop.
				sccStart := len(stack)
				for sccStart > 0 && stack[sccStart-1] != v {
					sccStart--
				}
				sccStart-- // include v itself
				members := stack[sccStart:]
				report := len(members) > 1
				if !report {
					for ei := e.estart[v]; ei < e.estart[v+1]; ei++ {
						if e.edges[ei].Label != LabelFD && int32(e.edges[ei].To) == v {
							report = true
							break
						}
					}
				}
				for _, w := range members {
					onStack[w] = false
					if report {
						out = append(out, NodeID(w))
					}
				}
				stack = stack[:sccStart]
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return out
}
