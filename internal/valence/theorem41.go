package valence

import (
	"fmt"

	"repro/internal/ioa"
)

// ExePath reconstructs one finite execution realizing node id: the action
// sequence along a breadth-first walk from the root (an exe(N) in the sense
// of Proposition 29, modulo the quotient's choice among the walks that Lemma
// 33 proves interchangeable).  Call after Explore.
func (e *Explorer) ExePath(id NodeID) []ioa.Action {
	type via struct {
		from NodeID
		act  ioa.Action
	}
	parent := map[NodeID]via{e.Root(): {from: -1}}
	queue := []NodeID{e.Root()}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == id {
			break
		}
		for _, ed := range e.nodes[cur].edges {
			if _, seen := parent[ed.to]; !seen {
				parent[ed.to] = via{from: cur, act: ed.act}
				queue = append(queue, ed.to)
			}
		}
	}
	if _, ok := parent[id]; !ok {
		return nil
	}
	var rev []ioa.Action
	for cur := id; cur != e.Root(); cur = parent[cur].from {
		rev = append(rev, parent[cur].act)
	}
	out := make([]ioa.Action, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// EqualToDepth verifies Theorem 41 executably: the explored graphs of two
// configurations (same system, different tD) agree on every walk of at most
// depth edges from the root — same edge labels, same action tags, same
// successor state encodings.  Both explorers must be Explored.  maxPairs
// caps the lockstep traversal (0 = 1e6).
func EqualToDepth(e1, e2 *Explorer, depth int, maxPairs int) error {
	if maxPairs <= 0 {
		maxPairs = 1_000_000
	}
	if len(e1.tasks) != len(e2.tasks) {
		return fmt.Errorf("valence: systems have different task lists (%d vs %d)", len(e1.tasks), len(e2.tasks))
	}
	type pair struct {
		a, b NodeID
		d    int
	}
	seen := make(map[[2]NodeID]bool)
	queue := []pair{{e1.Root(), e2.Root(), 0}}
	for len(queue) > 0 {
		if len(seen) > maxPairs {
			return fmt.Errorf("valence: pair cap %d exceeded", maxPairs)
		}
		p := queue[0]
		queue = queue[1:]
		if seen[[2]NodeID{p.a, p.b}] {
			continue
		}
		seen[[2]NodeID{p.a, p.b}] = true

		na, nb := e1.nodes[p.a], e2.nodes[p.b]
		if na.key.enc != nb.key.enc {
			return fmt.Errorf("valence: states diverge at depth %d:\n  %q\n  %q", p.d, na.key.enc, nb.key.enc)
		}
		if p.d >= depth {
			continue
		}
		// Compare outgoing edges label by label.
		ea := edgesByLabel(na)
		eb := edgesByLabel(nb)
		for l, ra := range ea {
			rb, ok := eb[l]
			if !ok {
				return fmt.Errorf("valence: depth %d: label %v enabled only in the first tree (action %v)", p.d, l, ra.act)
			}
			if ra.act != rb.act {
				return fmt.Errorf("valence: depth %d: label %v has actions %v vs %v", p.d, l, ra.act, rb.act)
			}
			queue = append(queue, pair{ra.to, rb.to, p.d + 1})
		}
		for l, rb := range eb {
			if _, ok := ea[l]; !ok {
				return fmt.Errorf("valence: depth %d: label %v enabled only in the second tree (action %v)", p.d, l, rb.act)
			}
		}
	}
	return nil
}

func edgesByLabel(n *node) map[Label]edge {
	out := make(map[Label]edge, len(n.edges))
	for _, ed := range n.edges {
		out[ed.label] = ed
	}
	return out
}
