package valence

import (
	"bytes"
	"fmt"

	"repro/internal/ioa"
)

// ExePath reconstructs one finite execution realizing node id: the action
// sequence along a breadth-first walk from the root (an exe(N) in the sense
// of Proposition 29, modulo the quotient's choice among the walks that Lemma
// 33 proves interchangeable).  Call after Explore.
func (e *Explorer) ExePath(id NodeID) []ioa.Action {
	type via struct {
		from NodeID
		act  ioa.Action
	}
	parent := map[NodeID]via{e.Root(): {from: -1}}
	queue := []NodeID{e.Root()}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == id {
			break
		}
		for _, ed := range e.Edges(cur) {
			if _, seen := parent[ed.To]; !seen {
				parent[ed.To] = via{from: cur, act: ed.Act}
				queue = append(queue, ed.To)
			}
		}
	}
	if _, ok := parent[id]; !ok {
		return nil
	}
	var rev []ioa.Action
	for cur := id; cur != e.Root(); cur = parent[cur].from {
		rev = append(rev, parent[cur].act)
	}
	out := make([]ioa.Action, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// EqualToDepth verifies Theorem 41 executably: the explored graphs of two
// configurations (same system, different tD) agree on every walk of at most
// depth edges from the root — same edge labels, same action tags, same
// successor state encodings.  Both explorers must be Explored.  maxPairs
// caps the lockstep traversal (0 = 1e6).
func EqualToDepth(e1, e2 *Explorer, depth int, maxPairs int) error {
	if maxPairs <= 0 {
		maxPairs = 1_000_000
	}
	if len(e1.tasks) != len(e2.tasks) {
		return fmt.Errorf("valence: systems have different task lists (%d vs %d)", len(e1.tasks), len(e2.tasks))
	}
	type pair struct {
		a, b NodeID
		d    int
	}
	seen := make(map[[2]NodeID]bool)
	queue := []pair{{e1.Root(), e2.Root(), 0}}
	for len(queue) > 0 {
		if len(seen) > maxPairs {
			return fmt.Errorf("valence: pair cap %d exceeded", maxPairs)
		}
		p := queue[0]
		queue = queue[1:]
		if seen[[2]NodeID{p.a, p.b}] {
			continue
		}
		seen[[2]NodeID{p.a, p.b}] = true

		ea, eb := e1.nodeEnc(p.a), e2.nodeEnc(p.b)
		if !bytes.Equal(ea, eb) {
			return fmt.Errorf("valence: states diverge at depth %d:\n  %q\n  %q", p.d, ea, eb)
		}
		if p.d >= depth {
			continue
		}
		// Compare outgoing edges label by label.
		ma := edgesByLabel(e1, p.a)
		mb := edgesByLabel(e2, p.b)
		for l, ra := range ma {
			rb, ok := mb[l]
			if !ok {
				return fmt.Errorf("valence: depth %d: label %v enabled only in the first tree (action %v)", p.d, l, ra.Act)
			}
			if ra.Act != rb.Act {
				return fmt.Errorf("valence: depth %d: label %v has actions %v vs %v", p.d, l, ra.Act, rb.Act)
			}
			queue = append(queue, pair{ra.To, rb.To, p.d + 1})
		}
		for l, rb := range mb {
			if _, ok := ma[l]; !ok {
				return fmt.Errorf("valence: depth %d: label %v enabled only in the second tree (action %v)", p.d, l, rb.Act)
			}
		}
	}
	return nil
}

func edgesByLabel(e *Explorer, id NodeID) map[Label]Edge {
	out := make(map[Label]Edge, e.estart[id+1]-e.estart[id])
	for _, ed := range e.Edges(id) {
		out[ed.Label] = ed
	}
	return out
}
