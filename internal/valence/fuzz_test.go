package valence

import (
	"bytes"
	"testing"
)

// fuzzSeedEncodings harvests real interned state encodings from a small
// explored graph, so the fuzzer's corpus starts from the byte shapes the
// arena actually stores (component encodings with \x1e separators) rather
// than from synthetic data.
func fuzzSeedEncodings(f *testing.F) [][]byte {
	f.Helper()
	e, err := New(Config{N: 2, Family: "FD-Ω", Algo: "ct", TD: OmegaTD(2, 2, nil)})
	if err != nil {
		f.Fatal(err)
	}
	if err := e.Explore(); err != nil {
		f.Fatal(err)
	}
	var out [][]byte
	for id := 0; id < e.NumNodes() && id < 16; id++ {
		out = append(out, e.NodeEncoding(NodeID(id)))
	}
	return out
}

// FuzzStateInterning drives the parallel explorer's interning machinery on
// arbitrary byte strings:
//
//   - shardArena chunk-stability: every slice put returns must still hold
//     exactly the bytes that were put after arbitrarily many later puts —
//     including puts that roll the arena over to a fresh chunk and oversized
//     puts that take the dedicated-allocation path.  (The arena exists
//     because append-grow would reallocate under concurrent readers; a slice
//     that mutates after return is the resulting memo corruption.)
//   - stateHash determinism and input-purity: hashing the same (encoding,
//     fd) twice — once from the caller's buffer, once from the interned copy
//     — must agree, and hashing must not mutate the input.
//   - fd mixing: the same encoding under different fd indexes must hash
//     differently (the memo key is the pair; a collision here would be legal
//     but an *equality* means fd is not mixed in at all).
func FuzzStateInterning(f *testing.F) {
	for _, enc := range fuzzSeedEncodings(f) {
		f.Add(enc, 0, uint8(3))
	}
	f.Add([]byte{}, 0, uint8(1))
	f.Add([]byte("\x1e\x1e"), 71, uint8(5))
	f.Add(bytes.Repeat([]byte{0xa5}, 4096), 3, uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, fd int, rounds uint8) {
		before := append([]byte(nil), data...)
		h1 := stateHash(data, fd)
		if !bytes.Equal(data, before) {
			t.Fatal("stateHash mutated its input")
		}
		if h2 := stateHash(data, fd); h2 != h1 {
			t.Fatalf("stateHash not deterministic: %#x vs %#x", h1, h2)
		}
		// Injective fd mixing: the xor-in is multiplication by an odd
		// constant (injective mod 2^64) and the avalanche is bijective, so
		// distinct fd values must produce distinct hashes for the same bytes.
		if stateHash(data, fd) == stateHash(data, fd+1) {
			t.Fatalf("fd not mixed into stateHash: fd=%d and fd=%d collide on %q", fd, fd+1, data)
		}

		var arena shardArena
		type put struct {
			want   []byte
			stored []byte
		}
		var puts []put
		record := func(b []byte) {
			got := arena.put(b)
			if !bytes.Equal(got, b) {
				t.Fatalf("put returned %q for %q", got, b)
			}
			puts = append(puts, put{want: append([]byte(nil), b...), stored: got})
		}
		record(data)
		// Subsequent puts of varying sizes, including ones big enough to
		// force chunk rollover (and, for large data, the oversized path).
		n := int(rounds%16) + 2
		for i := 0; i < n; i++ {
			record(bytes.Repeat(data, i%3+1))
			record([]byte{byte(i), 0x1e, byte(fd)})
		}
		record(bytes.Repeat([]byte{0x5a}, 1<<20)) // guaranteed fresh chunk
		for i, p := range puts {
			if !bytes.Equal(p.stored, p.want) {
				t.Fatalf("put %d corrupted after later puts: got %q, want %q", i, p.stored, p.want)
			}
			if h := stateHash(p.stored, fd); bytes.Equal(p.want, data) && h != h1 {
				t.Fatalf("interned copy of %q hashes %#x, original %#x", data, h, h1)
			}
		}
	})
}
