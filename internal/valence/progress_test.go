package valence

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/telemetry"
)

// TestProgressFinalReport pins the Progress contract both explorers share:
// the hook fires at least once, exactly the last report has Done set, and
// that final report carries the finished totals — Nodes == NumNodes() and
// Edges == NumEdges() — so a consumer (hookfind's status line, the telemetry
// gauges) can trust the Done report without re-querying the explorer.
func TestProgressFinalReport(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var reports []Progress
			e, err := New(Config{
				N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 4, nil),
				Workers:       tc.workers,
				ProgressEvery: 16, // small interval: force interim reports too
				Progress: func(p Progress) bool {
					reports = append(reports, p)
					return true
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Explore(); err != nil {
				t.Fatal(err)
			}
			if len(reports) == 0 {
				t.Fatal("Progress hook never called")
			}
			for i, p := range reports[:len(reports)-1] {
				if p.Done {
					t.Errorf("interim report %d/%d has Done set", i, len(reports))
				}
			}
			last := reports[len(reports)-1]
			if !last.Done {
				t.Fatalf("final report not marked Done: %+v", last)
			}
			if last.Nodes != int64(e.NumNodes()) || last.Edges != int64(e.NumEdges()) {
				t.Errorf("final report = %d nodes / %d edges, explorer has %d / %d",
					last.Nodes, last.Edges, e.NumNodes(), e.NumEdges())
			}
		})
	}
}

// TestExploreTelemetryConsistent cross-checks the valence metric plane
// against the explorer's own totals after a metered exploration.
func TestExploreTelemetryConsistent(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := explore(t, Config{
		N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 5, nil),
		Workers: 2, Telemetry: reg,
	})
	if got := reg.Value(telemetry.CValenceNodes); got != int64(e.NumNodes()) {
		t.Errorf("valence_nodes = %d, want NumNodes() = %d", got, e.NumNodes())
	}
	if got := reg.Value(telemetry.CValenceEdges); got != int64(e.NumEdges()) {
		t.Errorf("valence_edges = %d, want NumEdges() = %d", got, e.NumEdges())
	}
	if reg.Value(telemetry.CValenceExpansions) == 0 {
		t.Error("valence_expansions = 0 after an exploration")
	}
	if got := reg.Value(telemetry.GValenceWorkers); got != 2 {
		t.Errorf("valence_workers gauge = %d, want 2", got)
	}
	if reg.Value(telemetry.GValenceFrontierPeak) == 0 {
		t.Error("valence_frontier_peak = 0 after an exploration")
	}
}
