package valence

import (
	"bytes"
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// The partial-order reduction's independence relation claims that two
// enabled steps whose actions occur at different locations commute
// byte-exactly — including the one cross-location overlap, a send appending
// to the FIFO channel whose enabled delivery is the other step.  The tests
// here fire every claimed-independent enabled pair in both orders from
// reachable states of the golden configurations (and, in the fuzz target,
// from adversarially chosen walks) and require byte-identical composed
// encodings plus preserved enabledness.

// indepStep is one enabled transition: its flattened task (-1 for the FD
// edge), owning automaton (-1 for the FD edge), and action.
type indepStep struct {
	ti    int
	owner int
	act   ioa.Action
}

// enabledIndepSteps lists the FD edge (if any remains) plus every ready
// task of sys.
func enabledIndepSteps(sys *ioa.System, td []ioa.Action, fd int) []indepStep {
	var out []indepStep
	if fd < len(td) {
		out = append(out, indepStep{ti: -1, owner: -1, act: td[fd]})
	}
	tasks := sys.Tasks()
	for ti := range tasks {
		if sys.TaskReady(ti) {
			out = append(out, indepStep{ti: ti, owner: tasks[ti].Auto, act: sys.ReadyAction(ti)})
		}
	}
	return out
}

// stillEnabled reports whether step y is enabled on sys with the identical
// action (the FD edge is an externally driven event, always applicable).
func stillEnabled(sys *ioa.System, y indepStep) bool {
	if y.ti < 0 {
		return true
	}
	return sys.TaskReady(y.ti) && sys.ReadyAction(y.ti) == y.act
}

// checkCommutation fires x·y and y·x from clones of sys and requires
// preserved enabledness and byte-identical results.
func checkCommutation(t *testing.T, sys *ioa.System, x, y indepStep) {
	t.Helper()
	s1 := sys.CloneBare()
	s1.Apply(x.owner, x.act)
	if !stillEnabled(s1, y) {
		t.Fatalf("step %v disables claimed-independent %v", x.act, y.act)
	}
	s1.Apply(y.owner, y.act)
	s2 := sys.CloneBare()
	s2.Apply(y.owner, y.act)
	if !stillEnabled(s2, x) {
		t.Fatalf("step %v disables claimed-independent %v", y.act, x.act)
	}
	s2.Apply(x.owner, x.act)
	e1, e2 := s1.AppendEncode(nil), s2.AppendEncode(nil)
	if !bytes.Equal(e1, e2) {
		t.Fatalf("claimed-independent pair does not commute:\n  x=%v y=%v\n  x·y: %s\n  y·x: %s",
			x.act, y.act, e1, e2)
	}
}

// checkIndependentPairs fires every claimed-independent enabled pair at sys.
func checkIndependentPairs(t *testing.T, sys *ioa.System, td []ioa.Action, fd int) {
	t.Helper()
	steps := enabledIndepSteps(sys, td, fd)
	for i := 0; i < len(steps); i++ {
		for j := i + 1; j < len(steps); j++ {
			if steps[i].act.Loc == steps[j].act.Loc {
				continue // same location: dependence is expected, not claimed
			}
			checkCommutation(t, sys, steps[i], steps[j])
		}
	}
}

// TestIndependentPairsCommute replays the full execution graphs of the
// golden E10 configurations and fires every claimed-independent pair in
// both orders from every sampled reachable state.
func TestIndependentPairsCommute(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cfg    Config
		stride int
	}{
		{"omega n=2 short", Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 3, nil)}, 1},
		{"perfect s n=2 crash", Config{N: 2, Family: afd.FamilyP, Algo: "s",
			TD: PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}, 1},
		{"perfect s n=3 crash", Config{N: 3, Family: afd.FamilyP, Algo: "s",
			TD:     PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
			Values: []int{-1, 1, 1}, MaxNodes: 1_500_000, Workers: 4}, 211},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.N >= 3 && testing.Short() {
				t.Skip("n=3 replay exceeds -short budget")
			}
			e := explore(t, tc.cfg)
			type frame struct {
				id  NodeID
				sys *ioa.System
				ei  int
			}
			visited := make([]bool, e.NumNodes())
			checked := 0
			stack := []frame{{id: e.Root(), sys: e.NewRootSystem()}}
			visited[e.Root()] = true
			for len(stack) > 0 {
				f := &stack[len(stack)-1]
				if f.ei == 0 && int(f.id)%tc.stride == 0 {
					checkIndependentPairs(t, f.sys, tc.cfg.TD, e.NodeFD(f.id))
					checked++
				}
				edges := e.Edges(f.id)
				if f.ei >= len(edges) {
					stack = stack[:len(stack)-1]
					continue
				}
				ed := edges[f.ei]
				f.ei++
				if visited[ed.To] {
					continue
				}
				visited[ed.To] = true
				child := f.sys.CloneBare()
				child.Apply(e.TaskOwner(ed.Label), ed.Act)
				stack = append(stack, frame{id: ed.To, sys: child})
			}
			if checked == 0 {
				t.Fatal("no states sampled")
			}
			t.Logf("checked pairs at %d of %d states", checked, e.NumNodes())
		})
	}
}

// FuzzIndependentPairsCommute drives a fuzzer-chosen walk from the root of
// the n=2 S-algorithm crash configuration and fires every
// claimed-independent enabled pair at the reached state.
func FuzzIndependentPairsCommute(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 1, 0, 3})
	f.Add([]byte{5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{1, 3}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{N: 2, Family: afd.FamilyP, Algo: "s",
			TD: PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		sys := e.NewRootSystem()
		fd := 0
		if len(data) > 48 {
			data = data[:48]
		}
		for _, b := range data {
			opts := enabledIndepSteps(sys, cfg.TD, fd)
			if len(opts) == 0 {
				break
			}
			ch := opts[int(b)%len(opts)]
			if ch.ti < 0 {
				fd++
			}
			sys.Apply(ch.owner, ch.act)
		}
		checkIndependentPairs(t, sys, cfg.TD, fd)
	})
}
