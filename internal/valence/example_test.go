package valence_test

import (
	"fmt"

	"repro/internal/afd"
	"repro/internal/valence"
)

// Exploring the tagged execution tree of a two-location consensus system
// under a fixed Ω sequence, and verifying a hook (Theorem 59).
func ExampleExplorer() {
	e, err := valence.New(valence.Config{
		N:      2,
		Family: afd.FamilyOmega,
		TD:     valence.OmegaTD(2, 3, nil),
	})
	if err != nil {
		fmt.Println("new:", err)
		return
	}
	if err := e.Explore(); err != nil {
		fmt.Println("explore:", err)
		return
	}
	fmt.Println("root:", e.Valence(e.Root()))
	hooks := e.FindHooks(1)
	fmt.Println("hook found:", len(hooks) == 1, "verified:", e.VerifyHook(hooks[0]) == nil)
	// Output:
	// root: bivalent
	// hook found: true verified: true
}
