package valence

import (
	"fmt"

	"strings"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Hook is the Section-9.6.1 structure: a bivalent node N with labels l and r
// such that N's l-child is v-valent and the l-child of N's r-child is
// (1−v)-valent.  The actions of the two edges occur at a single location —
// the hook's critical location — which Theorem 59 proves live in tD.
type Hook struct {
	Node     NodeID
	L, R     Label
	LAct     ioa.Action // action tag of N's l-edge
	RAct     ioa.Action // action tag of N's r-edge
	V        Valence    // valence of N's l-child
	Critical ioa.Loc    // location of both action tags (Lemma 57)
}

// String implements fmt.Stringer.
func (h Hook) String() string {
	return fmt.Sprintf("hook(node=%d, l=%v via %v, r=%v via %v, v=%v, critical=%v)",
		h.Node, h.L, h.LAct, h.R, h.RAct, h.V, h.Critical)
}

// childVia returns the target of node id's edge labeled l, if present.
func (e *Explorer) childVia(id NodeID, l Label) (NodeID, ioa.Action, bool) {
	for _, ed := range e.nodes[id].edges {
		if ed.label == l {
			return ed.to, ed.act, true
		}
	}
	return 0, ioa.Action{}, false
}

// FindHooks scans the explored graph for hooks, up to the given count
// (0 = all).  Per Lemma 55 at least one exists whenever the root is
// bivalent and tD crashes at most f locations.
func (e *Explorer) FindHooks(limit int) []Hook {
	var out []Hook
	for id := range e.nodes {
		n := NodeID(id)
		if e.Valence(n) != ValBivalent {
			continue
		}
		for _, le := range e.nodes[n].edges {
			lv := e.Valence(le.to)
			if lv != ValZero && lv != ValOne {
				continue
			}
			for _, re := range e.nodes[n].edges {
				if re.label == le.label {
					continue
				}
				// Lemma 56 requires N's own l- and r-edges to be non-⊥,
				// but the l-edge *of N's r-child* may be ⊥ (e.g. a
				// propose task disabled by the r-edge's propose): a ⊥
				// edge is a self-loop, so the grandchild is the r-child
				// itself.
				rl, _, ok := e.childVia(re.to, le.label)
				if !ok {
					rl = re.to
				}
				rlv := e.Valence(rl)
				if (lv == ValZero && rlv == ValOne) || (lv == ValOne && rlv == ValZero) {
					h := Hook{
						Node: n, L: le.label, R: re.label,
						LAct: le.act, RAct: re.act,
						V: lv, Critical: le.act.Loc,
					}
					out = append(out, h)
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
	}
	return out
}

// VerifyHook checks the Theorem-59 properties of a hook against the tD the
// explorer was built with:
//
//	(1) the action tags of the l- and r-edges are not ⊥ (Lemma 56);
//	(2) both action tags occur at the same location (Lemma 57);
//	(3) that critical location is live in tD (Lemma 58).
func (e *Explorer) VerifyHook(h Hook) error {
	if h.LAct.IsZero() || h.RAct.IsZero() {
		return fmt.Errorf("valence: hook has ⊥ action tag (violates Lemma 56): %v", h)
	}
	if h.LAct.Loc != h.RAct.Loc {
		return fmt.Errorf("valence: hook edges occur at %v and %v (violates Lemma 57): %v",
			h.LAct.Loc, h.RAct.Loc, h)
	}
	faulty := trace.Faulty(e.cfg.TD)
	if faulty[h.LAct.Loc] {
		return fmt.Errorf("valence: critical location %v is faulty in tD (violates Lemma 58): %v",
			h.LAct.Loc, h)
	}
	return nil
}

// CheckLemma52 verifies valence monotonicity on every edge of the explored
// graph: a v-valent node has only v-valent descendants (children's masks are
// subsets of their parents').
func (e *Explorer) CheckLemma52() error {
	for id, n := range e.nodes {
		for _, ed := range n.edges {
			child := e.nodes[ed.to].mask
			// The parent's reachable set includes the edge's own decide
			// contribution plus the child's set.
			var bit uint8
			if b, ok := decideBit(ed.act); ok {
				bit = b
			}
			if n.mask|child|bit != n.mask {
				return fmt.Errorf("valence: node %d mask %b missing child %d mask %b (Lemma 52)",
					id, n.mask, ed.to, child)
			}
		}
	}
	return nil
}

// CheckProposition50 verifies that no bivalent node is entered via a decide
// edge: once a decision value appears in exe(N), N cannot be bivalent.
func (e *Explorer) CheckProposition50() error {
	for id, n := range e.nodes {
		for _, ed := range n.edges {
			if _, ok := decideBit(ed.act); !ok {
				continue
			}
			if e.Valence(ed.to) == ValBivalent {
				return fmt.Errorf("valence: bivalent node %d reached via decide edge from %d (Proposition 50)",
					ed.to, id)
			}
		}
	}
	return nil
}

// HookStats summarizes a hook collection: how many hooks pivot on each kind
// of edge (the FD edge vs process / channel / environment tasks) and the
// distribution of critical locations.  The paper's Theorem 59 says critical
// locations are live; the stats show *which* live events are decisive —
// e.g. the FD-versus-delivery races of the crash-information argument.
type HookStats struct {
	ByLabelKind map[string]int // "fd", "proc", "chan", "env"
	ByCritical  map[ioa.Loc]int
	FDInvolved  int // hooks whose l- or r-edge is the FD edge
}

// HookStats computes statistics over the given hooks.
func (e *Explorer) HookStats(hooks []Hook) HookStats {
	st := HookStats{
		ByLabelKind: make(map[string]int),
		ByCritical:  make(map[ioa.Loc]int),
	}
	kind := func(l Label) string {
		if l == LabelFD {
			return "fd"
		}
		name := e.labels[l]
		switch {
		case strings.HasPrefix(name, "chan"):
			return "chan"
		case strings.HasPrefix(name, "env"):
			return "env"
		default:
			return "proc"
		}
	}
	for _, h := range hooks {
		st.ByLabelKind[kind(h.L)]++
		st.ByLabelKind[kind(h.R)]++
		st.ByCritical[h.Critical]++
		if h.L == LabelFD || h.R == LabelFD {
			st.FDInvolved++
		}
	}
	return st
}

// BivalencePath returns a longest-effort chain of bivalent nodes from the
// root following edges to bivalent children (the adversary of the FLP
// argument).  It stops when no bivalent child exists (decision forced) or
// when it revisits a node (a bivalent cycle, meaning the adversary can delay
// decisions forever on an unfair schedule).  It reports the path length and
// whether a cycle was found.
func (e *Explorer) BivalencePath() (length int, cyclic bool) {
	seen := make(map[NodeID]bool)
	cur := e.Root()
	for {
		if e.Valence(cur) != ValBivalent {
			return length, false
		}
		if seen[cur] {
			return length, true
		}
		seen[cur] = true
		next := NodeID(-1)
		for _, ed := range e.nodes[cur].edges {
			if e.Valence(ed.to) == ValBivalent {
				next = ed.to
				break
			}
		}
		if next < 0 {
			return length, false
		}
		length++
		cur = next
	}
}
