package valence

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Hook is the Section-9.6.1 structure: a bivalent node N with labels l and r
// such that N's l-child is v-valent and the l-child of N's r-child is
// (1−v)-valent.  The actions of the two edges occur at a single location —
// the hook's critical location — which Theorem 59 proves live in tD.
type Hook struct {
	Node     NodeID
	L, R     Label
	LAct     ioa.Action // action tag of N's l-edge
	RAct     ioa.Action // action tag of N's r-edge
	V        Valence    // valence of N's l-child
	Critical ioa.Loc    // location of both action tags (Lemma 57)
}

// String implements fmt.Stringer.
func (h Hook) String() string {
	return fmt.Sprintf("hook(node=%d, l=%v via %v, r=%v via %v, v=%v, critical=%v)",
		h.Node, h.L, h.LAct, h.R, h.RAct, h.V, h.Critical)
}

// childVia returns the target of node id's edge labeled l, if present.
func (e *Explorer) childVia(id NodeID, l Label) (NodeID, ioa.Action, bool) {
	for _, ed := range e.Edges(id) {
		if ed.Label == l {
			return ed.To, ed.Act, true
		}
	}
	return 0, ioa.Action{}, false
}

// FindHooks scans the explored graph for hooks, up to the given count
// (0 = all).  Per Lemma 55 at least one exists whenever the root is
// bivalent and tD crashes at most f locations.  The scan parallelizes over
// node ranges when Config.Workers allows, but the returned slice is always
// the exact prefix the serial node-order scan would produce.
func (e *Explorer) FindHooks(limit int) []Hook {
	n := len(e.fdIdx)
	w := e.cfg.workers()
	if w <= 1 || n < 4096 {
		return e.findHooksRange(0, n, limit)
	}
	// Chunk the ID space; process chunks in ascending batches so we can
	// stop as soon as the completed prefix satisfies the limit, and
	// concatenate in chunk order to preserve the serial output exactly.
	numChunks := w * 4
	chunk := (n + numChunks - 1) / numChunks
	results := make([][]Hook, numChunks)
	processed := 0
	for batch := 0; batch*w < numChunks; batch++ {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			ci := batch*w + i
			if ci >= numChunks {
				break
			}
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				lo := ci * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if lo < hi {
					results[ci] = e.findHooksRange(lo, hi, limit)
				}
			}(ci)
		}
		wg.Wait()
		processed = batch*w + w
		if processed > numChunks {
			processed = numChunks
		}
		if limit > 0 {
			total := 0
			for ci := 0; ci < processed; ci++ {
				total += len(results[ci])
			}
			if total >= limit {
				break
			}
		}
	}
	var out []Hook
	for ci := 0; ci < processed; ci++ {
		out = append(out, results[ci]...)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			break
		}
	}
	return out
}

// findHooksRange is the serial hook scan over node IDs [lo, hi).
func (e *Explorer) findHooksRange(lo, hi, limit int) []Hook {
	var out []Hook
	for id := lo; id < hi; id++ {
		n := NodeID(id)
		if e.Valence(n) != ValBivalent {
			continue
		}
		nEdges := e.Edges(n)
		for _, le := range nEdges {
			lv := e.Valence(le.To)
			if lv != ValZero && lv != ValOne {
				continue
			}
			for _, re := range nEdges {
				if re.Label == le.Label {
					continue
				}
				// Lemma 56 requires N's own l- and r-edges to be non-⊥,
				// but the l-edge *of N's r-child* may be ⊥ (e.g. a
				// propose task disabled by the r-edge's propose): a ⊥
				// edge is a self-loop, so the grandchild is the r-child
				// itself.
				rl, _, ok := e.childVia(re.To, le.Label)
				if !ok {
					rl = re.To
				}
				rlv := e.Valence(rl)
				if (lv == ValZero && rlv == ValOne) || (lv == ValOne && rlv == ValZero) {
					h := Hook{
						Node: n, L: le.Label, R: re.Label,
						LAct: le.Act, RAct: re.Act,
						V: lv, Critical: le.Act.Loc,
					}
					out = append(out, h)
					if limit > 0 && len(out) >= limit {
						return out
					}
				}
			}
		}
	}
	return out
}

// VerifyHook checks the Theorem-59 properties of a hook against the tD the
// explorer was built with:
//
//	(1) the action tags of the l- and r-edges are not ⊥ (Lemma 56);
//	(2) both action tags occur at the same location (Lemma 57);
//	(3) that critical location is live in tD (Lemma 58).
func (e *Explorer) VerifyHook(h Hook) error {
	if h.LAct.IsZero() || h.RAct.IsZero() {
		return fmt.Errorf("valence: hook has ⊥ action tag (violates Lemma 56): %v", h)
	}
	if h.LAct.Loc != h.RAct.Loc {
		return fmt.Errorf("valence: hook edges occur at %v and %v (violates Lemma 57): %v",
			h.LAct.Loc, h.RAct.Loc, h)
	}
	faulty := trace.Faulty(e.cfg.TD)
	if faulty[h.LAct.Loc] {
		return fmt.Errorf("valence: critical location %v is faulty in tD (violates Lemma 58): %v",
			h.LAct.Loc, h)
	}
	return nil
}

// CheckLemma52 verifies valence monotonicity on every edge of the explored
// graph: a v-valent node has only v-valent descendants (children's masks are
// subsets of their parents').
func (e *Explorer) CheckLemma52() error {
	for id := range e.fdIdx {
		m := e.mask[id]
		for _, ed := range e.Edges(NodeID(id)) {
			child := e.mask[ed.To]
			// The parent's reachable set includes the edge's own decide
			// contribution plus the child's set.
			var bit uint8
			if b, ok := decideBit(ed.Act); ok {
				bit = b
			}
			if m|child|bit != m {
				return fmt.Errorf("valence: node %d mask %b missing child %d mask %b (Lemma 52)",
					id, m, ed.To, child)
			}
		}
	}
	return nil
}

// CheckProposition50 verifies that no bivalent node is entered via a decide
// edge: once a decision value appears in exe(N), N cannot be bivalent.
func (e *Explorer) CheckProposition50() error {
	for id := range e.fdIdx {
		for _, ed := range e.Edges(NodeID(id)) {
			if _, ok := decideBit(ed.Act); !ok {
				continue
			}
			if e.Valence(ed.To) == ValBivalent {
				return fmt.Errorf("valence: bivalent node %d reached via decide edge from %d (Proposition 50)",
					ed.To, id)
			}
		}
	}
	return nil
}

// HookStats summarizes a hook collection: how many hooks pivot on each kind
// of edge (the FD edge vs process / channel / environment tasks) and the
// distribution of critical locations.  The paper's Theorem 59 says critical
// locations are live; the stats show *which* live events are decisive —
// e.g. the FD-versus-delivery races of the crash-information argument.
type HookStats struct {
	ByLabelKind map[string]int // "fd", "proc", "chan", "env"
	ByCritical  map[ioa.Loc]int
	FDInvolved  int // hooks whose l- or r-edge is the FD edge
}

// HookStats computes statistics over the given hooks.
func (e *Explorer) HookStats(hooks []Hook) HookStats {
	st := HookStats{
		ByLabelKind: make(map[string]int),
		ByCritical:  make(map[ioa.Loc]int),
	}
	kind := func(l Label) string {
		if l == LabelFD {
			return "fd"
		}
		name := e.labels[l]
		switch {
		case strings.HasPrefix(name, "chan"):
			return "chan"
		case strings.HasPrefix(name, "env"):
			return "env"
		default:
			return "proc"
		}
	}
	for _, h := range hooks {
		st.ByLabelKind[kind(h.L)]++
		st.ByLabelKind[kind(h.R)]++
		st.ByCritical[h.Critical]++
		if h.L == LabelFD || h.R == LabelFD {
			st.FDInvolved++
		}
	}
	return st
}

// BivalencePath returns a longest-effort chain of bivalent nodes from the
// root following edges to bivalent children (the adversary of the FLP
// argument).  It stops when no bivalent child exists (decision forced) or
// when it revisits a node (a bivalent cycle, meaning the adversary can delay
// decisions forever on an unfair schedule).  It reports the path length and
// whether a cycle was found.
func (e *Explorer) BivalencePath() (length int, cyclic bool) {
	seen := make(map[NodeID]bool)
	cur := e.Root()
	for {
		if e.Valence(cur) != ValBivalent {
			return length, false
		}
		if seen[cur] {
			return length, true
		}
		seen[cur] = true
		next := NodeID(-1)
		for _, ed := range e.Edges(cur) {
			if e.Valence(ed.To) == ValBivalent {
				next = ed.To
				break
			}
		}
		if next < 0 {
			return length, false
		}
		length++
		cur = next
	}
}
