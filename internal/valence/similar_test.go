package valence

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
)

// buildPair returns a composed consensus system in a state where location i
// has crashed with messages still in flight from i.
func buildPair(t *testing.T) (*ioa.System, ioa.Loc) {
	t.Helper()
	const n, i = 3, 2
	procs, err := consensus.Procs(n, afd.FamilyOmega)
	if err != nil {
		t.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.ConsensusEnvsFixed([]int{0, 1, 1})...)
	sys := ioa.MustNewSystem(autos...)

	// Drive the environment and let location 2 send its round-1 estimate,
	// then crash it with the message still queued.
	for _, tr := range sys.Tasks() {
		if act, ok := sys.Enabled(tr); ok && act.Kind == ioa.KindEnvIn {
			sys.Apply(tr.Auto, act)
		}
	}
	// Fire process 2's pending send (E|1|...|0 to location 0).
	for _, tr := range sys.Tasks() {
		if act, ok := sys.Enabled(tr); ok && act.Kind == ioa.KindSend && act.Loc == i {
			sys.Apply(tr.Auto, act)
			break
		}
	}
	sys.Apply(-1, ioa.Crash(i))
	return sys, i
}

func TestSimilarModuloIReflexive(t *testing.T) {
	sys, i := buildPair(t)
	if err := SimilarModuloI(sys, sys.Clone(), i); err != nil {
		t.Fatalf("∼i must be reflexive on crashed states: %v", err)
	}
}

func TestSimilarModuloIRequiresCrash(t *testing.T) {
	const n = 2
	procs, err := consensus.Procs(n, afd.FamilyOmega)
	if err != nil {
		t.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.ConsensusEnvs(n)...)
	sys := ioa.MustNewSystem(autos...)
	if err := SimilarModuloI(sys, sys.Clone(), 0); err == nil {
		t.Fatal("∼i must require crashi in both states (condition 1)")
	}
}

// TestSimilarModuloIChannelPrefix: delivering a message *from* the crashed
// location preserves N ∼i N′ in one direction (the shorter queue is a
// prefix of the longer) but not the other — the asymmetry the paper notes.
func TestSimilarModuloIChannelPrefix(t *testing.T) {
	sys, i := buildPair(t)
	ahead := sys.Clone()
	// In `sys` (not in `ahead`), deliver one message from the crashed
	// location, shortening Chan[i→·].
	delivered := false
	for _, tr := range sys.Tasks() {
		if act, ok := sys.Enabled(tr); ok && act.Kind == ioa.KindReceive && act.Peer == i {
			sys.Apply(tr.Auto, act)
			delivered = true
			break
		}
	}
	if !delivered {
		t.Fatal("test setup: no message from the crashed location in flight")
	}
	// The delivery changed the receiving process too, so full ∼i does not
	// hold between sys and ahead; the channel-prefix direction is what we
	// can isolate: rebuild a pair differing ONLY in the queue by crashing
	// before/after a second send.  Simplest faithful check: sys vs sys is
	// fine, and ahead vs sys must fail because ahead's queue is longer and
	// its receiver state differs.
	if err := SimilarModuloI(ahead, sys, i); err == nil {
		t.Fatal("states with diverged receiver state reported ∼i")
	}
}

// TestLemma39OnDeliveries: if N ∼i N′ (here: equal states, which is the
// reflexive instance), then applying the same label to both yields l-children
// with N^l ∼i N′^l — exercised for every enabled task.
func TestLemma39OnDeliveries(t *testing.T) {
	sys, i := buildPair(t)
	other := sys.Clone()
	for _, tr := range sys.Tasks() {
		a1, ok1 := sys.Enabled(tr)
		a2, ok2 := other.Enabled(tr)
		if ok1 != ok2 || a1 != a2 {
			t.Fatalf("equal states enable different actions at %v", tr)
		}
		if !ok1 {
			continue
		}
		s1 := sys.Clone()
		s2 := other.Clone()
		s1.Apply(tr.Auto, a1)
		s2.Apply(tr.Auto, a2)
		if err := SimilarModuloI(s1, s2, i); err != nil {
			t.Fatalf("Lemma 39 instance failed for %v (%v): %v", tr, a1, err)
		}
	}
}

func TestLocOfAutomaton(t *testing.T) {
	procs, err := consensus.Procs(2, afd.FamilyOmega)
	if err != nil {
		t.Fatal(err)
	}
	if got := locOfAutomaton(procs[1]); got != 1 {
		t.Errorf("locOfAutomaton(proc 1) = %v", got)
	}
	if got := locOfAutomaton(system.NewCrash(system.NoFaults())); got != ioa.NoLoc {
		t.Errorf("locOfAutomaton(crash automaton) = %v, want NoLoc", got)
	}
}
