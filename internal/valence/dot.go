package valence

import (
	"fmt"
	"io"
)

// WriteDOT renders the explored graph in Graphviz DOT, colored by valence
// (bivalent = orange, 0-valent = skyblue, 1-valent = palegreen, unknown =
// gray) with decide edges drawn bold red and FD edges dashed — a visual
// rendering of the paper's Figures 2–3 on real systems.  maxNodes caps the
// output (0 = 2000); nodes are emitted in BFS order from the root so small
// caps show the neighborhood where hooks live.
func (e *Explorer) WriteDOT(w io.Writer, maxNodes int) error {
	if maxNodes <= 0 {
		maxNodes = 2000
	}
	include := make(map[NodeID]bool, maxNodes)
	order := make([]NodeID, 0, maxNodes)
	queue := []NodeID{e.Root()}
	include[e.Root()] = true
	for len(queue) > 0 && len(order) < maxNodes {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ed := range e.Edges(id) {
			if !include[ed.To] && len(include) < maxNodes {
				include[ed.To] = true
				queue = append(queue, ed.To)
			}
		}
	}

	if _, err := fmt.Fprintln(w, "digraph rtd {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB; node [shape=circle, style=filled, fontsize=8];")
	for _, id := range order {
		color := "gray"
		switch e.Valence(id) {
		case ValBivalent:
			color = "orange"
		case ValZero:
			color = "skyblue"
		case ValOne:
			color = "palegreen"
		}
		label := fmt.Sprintf("%d\\nfd=%d", id, e.fdIdx[id])
		if id == e.Root() {
			label = "⊤\\n" + label
		}
		fmt.Fprintf(w, "  n%d [fillcolor=%s, label=\"%s\"];\n", id, color, label)
	}
	for _, id := range order {
		for _, ed := range e.Edges(id) {
			if !include[ed.To] {
				continue
			}
			attrs := ""
			if ed.Label == LabelFD {
				attrs = ", style=dashed"
			}
			if _, ok := decideBit(ed.Act); ok {
				attrs = ", color=red, penwidth=2"
			}
			fmt.Fprintf(w, "  n%d -> n%d [label=\"%s\", fontsize=7%s];\n",
				id, ed.To, dotEscape(ed.Act.String()), attrs)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func dotEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '"' || r == '\\' {
			out = append(out, '\\')
		}
		out = append(out, r)
	}
	return string(out)
}
