package valence

import (
	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/trace"
)

// PerfectTD builds an admissible P sequence tD ∈ TP for n locations:
// `rounds` sweeps of FD-P(crashset)i at every live location, with crash
// events injected before the sweep whose index equals crashAt[loc] — what
// Algorithm 2 produces under a fair schedule with that fault pattern.
func PerfectTD(n, rounds int, crashAt map[ioa.Loc]int) trace.T {
	var t trace.T
	crashed := make(map[ioa.Loc]bool)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			l := ioa.Loc(i)
			if at, ok := crashAt[l]; ok && at == r && !crashed[l] {
				crashed[l] = true
				t = append(t, ioa.Crash(l))
			}
		}
		payload := ioa.EncodeLocSet(crashed)
		for i := 0; i < n; i++ {
			l := ioa.Loc(i)
			if !crashed[l] {
				t = append(t, ioa.FDOutput(afd.FamilyP, l, payload))
			}
		}
	}
	return t
}

// OmegaTD builds an admissible Ω sequence tD ∈ TΩ for n locations: `rounds`
// sweeps of FD-Ω(leader)i at every live location, where the leader is the
// minimum live location, with crash events injected before the sweep whose
// index equals crashAt[loc].  The result is what Algorithm 1 produces under
// a fair schedule with that fault pattern, and is checkable against the Ω
// membership checker.
func OmegaTD(n, rounds int, crashAt map[ioa.Loc]int) trace.T {
	var t trace.T
	crashed := make(map[ioa.Loc]bool)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			l := ioa.Loc(i)
			if at, ok := crashAt[l]; ok && at == r && !crashed[l] {
				crashed[l] = true
				t = append(t, ioa.Crash(l))
			}
		}
		leader := ioa.NoLoc
		for i := 0; i < n; i++ {
			if !crashed[ioa.Loc(i)] {
				leader = ioa.Loc(i)
				break
			}
		}
		if leader == ioa.NoLoc {
			break
		}
		for i := 0; i < n; i++ {
			l := ioa.Loc(i)
			if !crashed[l] {
				t = append(t, ioa.FDOutput(afd.FamilyOmega, l, ioa.EncodeLoc(leader)))
			}
		}
	}
	return t
}
