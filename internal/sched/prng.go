package sched

// PRNG is the deterministic pseudo-random source the chaos machinery
// schedules and samples with.  Unlike math/rand.Rand it is a minimal
// interface, so harnesses can wrap it (recording decisions, replaying an
// edited decision log) without re-seeding games; implementations must be
// fully determined by their seed so that a (seed, gate parameters, fault
// plan) triple replays to the identical execution.
type PRNG interface {
	// Intn returns a uniform int in [0, n); it panics if n <= 0.
	Intn(n int) int
	// Uint64 returns the next raw 64-bit word of the stream.
	Uint64() uint64
}

// splitmix64 is Vigna's SplitMix64 generator: tiny, fast, full-period, and
// stable across Go releases (math/rand's global source changed in Go 1.20;
// chaos artifacts must not depend on stdlib internals).
type splitmix64 struct{ state uint64 }

// NewPRNG returns a deterministic PRNG seeded with seed.
func NewPRNG(seed int64) PRNG { return &splitmix64{state: uint64(seed)} }

// Uint64 implements PRNG.
func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn implements PRNG via unbiased rejection sampling.
func (s *splitmix64) Intn(n int) int {
	if n <= 0 {
		panic("sched: Intn with non-positive bound")
	}
	bound := uint64(n)
	// Largest multiple of bound representable in 64 bits.
	limit := (^uint64(0) / bound) * bound
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}
