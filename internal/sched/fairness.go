package sched

import (
	"fmt"

	"repro/internal/ioa"
)

// FairnessAudit records, for a finite run, how each task was treated, and
// decides whether the prefix is consistent with fairness in the Section-2.4
// sense: a fair execution gives every task infinitely many turns in which it
// either fires or is disabled.  On a finite prefix the audit verifies the
// stronger scheduler-level invariant that every task got a turn (fired or
// was observed disabled) at least once per window of the given size.
type FairnessAudit struct {
	window  int
	tasks   []ioa.TaskRef
	lastACK map[ioa.TaskRef]int // step of last fire-or-disabled observation
	steps   int
	violant *ioa.TaskRef
	at      int
}

// NewFairnessAudit audits the given tasks with the given window (0 uses
// 4×len(tasks), enough for round-robin with slack).
func NewFairnessAudit(tasks []ioa.TaskRef, window int) *FairnessAudit {
	if window <= 0 {
		window = 4 * len(tasks)
		if window == 0 {
			window = 1
		}
	}
	a := &FairnessAudit{
		window:  window,
		tasks:   append([]ioa.TaskRef(nil), tasks...),
		lastACK: make(map[ioa.TaskRef]int, len(tasks)),
	}
	for _, t := range a.tasks {
		a.lastACK[t] = 0
	}
	return a
}

// Observe records that task tr got a turn at the current step: it fired,
// was found disabled, or was offered to the gate and vetoed.  A veto is the
// environment withholding the action, not the scheduler neglecting the task
// — §2.4 fairness constrains the scheduler, so a vetoed turn still counts.
func (a *FairnessAudit) Observe(tr ioa.TaskRef) {
	a.lastACK[tr] = a.steps
}

// Tick advances the audited step counter and checks windows.
func (a *FairnessAudit) Tick() {
	a.steps++
	if a.violant != nil {
		return
	}
	for _, t := range a.tasks {
		if a.steps-a.lastACK[t] > a.window {
			tt := t
			a.violant = &tt
			a.at = a.steps
			return
		}
	}
}

// Err reports the first starvation found, if any.
func (a *FairnessAudit) Err() error {
	if a.violant == nil {
		return nil
	}
	return fmt.Errorf("sched: task %v starved for > %d steps (at step %d)", *a.violant, a.window, a.at)
}

// AuditedRoundRobin runs the round-robin scheduler while auditing fairness;
// it returns the run result and the audit verdict.  Round-robin passes the
// audit by construction; the function exists to validate the scheduler
// itself and to provide a template for auditing custom strategies.
//
// Unlike RoundRobin it walks every task index (not just the ready-set):
// observing a task disabled is a fair turn the audit must record.
func AuditedRoundRobin(sys *ioa.System, opts Options) (Result, error) {
	audit := NewFairnessAudit(sys.Tasks(), 0)
	limit := opts.maxSteps()
	tasks := sys.Tasks()
	for sys.Steps() < limit {
		fired, gated := false, false
		for idx, tr := range tasks {
			if sys.Steps() >= limit {
				break
			}
			if !sys.TaskReady(idx) {
				audit.Observe(tr) // a disabled turn is a fair turn
				continue
			}
			act := sys.ReadyAction(idx)
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				audit.Observe(tr) // the turn was offered; the gate vetoed it
				gated = true
				continue
			}
			sys.Apply(tr.Auto, act)
			audit.Observe(tr)
			audit.Tick()
			fired = true
			if opts.Stop != nil && opts.Stop(sys, act) {
				return Result{Steps: sys.Steps(), Reason: StopCondition}, audit.Err()
			}
		}
		if !fired {
			return stalled(sys, gated), audit.Err()
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}, audit.Err()
}

// Starve returns a Strategy that never schedules tasks of the given
// automaton index while any other task is enabled — a deliberately unfair
// adversary used to demonstrate that safety properties survive unfair
// schedules while liveness properties do not.
func Starve(auto int) Strategy {
	return StrategyFunc(func(_ *ioa.System, enabled []ioa.TaskRef, _ []ioa.Action) int {
		fallback := -1
		for i, tr := range enabled {
			if tr.Auto != auto {
				return i
			}
			fallback = i
		}
		return fallback
	})
}
