package sched

import (
	"testing"

	"repro/internal/ioa"
)

// TestPartitionGate pins the partition gate's semantics: only cross-side
// deliveries inside the [from, until) window are vetoed; sends, crashes,
// same-side deliveries, and everything outside the window pass.
func TestPartitionGate(t *testing.T) {
	recv := func(to, from ioa.Loc) ioa.Action {
		return ioa.Action{Kind: ioa.KindReceive, Name: ioa.NameReceive, Loc: to, Peer: from}
	}
	// Locations 0,1 on side 0; locations 2,3 on side 1.
	g := Partition(0b1100, 10, 20)

	if g(9, ioa.TaskRef{}, recv(2, 0)) == false {
		t.Error("cross-side delivery vetoed before the partition engages")
	}
	if g(10, ioa.TaskRef{}, recv(2, 0)) {
		t.Error("cross-side delivery admitted inside the partition window")
	}
	if g(19, ioa.TaskRef{}, recv(0, 3)) {
		t.Error("cross-side delivery (reverse direction) admitted inside the window")
	}
	if !g(15, ioa.TaskRef{}, recv(1, 0)) {
		t.Error("same-side delivery vetoed (side 0)")
	}
	if !g(15, ioa.TaskRef{}, recv(3, 2)) {
		t.Error("same-side delivery vetoed (side 1)")
	}
	if !g(20, ioa.TaskRef{}, recv(2, 0)) {
		t.Error("cross-side delivery vetoed after the heal")
	}
	if !g(15, ioa.TaskRef{}, ioa.Action{Kind: ioa.KindSend, Name: ioa.NameSend, Loc: 0, Peer: 2}) {
		t.Error("send vetoed: partitions delay delivery, never sending")
	}
	if !g(15, ioa.TaskRef{}, ioa.Action{Kind: ioa.KindCrash, Name: ioa.NameCrash, Loc: 2}) {
		t.Error("crash vetoed by the partition gate")
	}

	// until ≤ from never heals.
	perm := Partition(0b0001, 5, 0)
	if perm(1_000_000, ioa.TaskRef{}, recv(1, 0)) {
		t.Error("permanent partition healed")
	}
	if !perm(4, ioa.TaskRef{}, recv(1, 0)) {
		t.Error("permanent partition engaged before its start step")
	}
}
