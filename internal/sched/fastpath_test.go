package sched

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/system"
)

// refRoundRobin is the pre-fast-path round-robin: poll every task of the
// composition in order, each full pass, firing what is enabled and admitted.
func refRoundRobin(sys *ioa.System, opts Options) {
	limit := opts.maxSteps()
	for sys.Steps() < limit {
		fired := false
		for _, tr := range sys.Tasks() {
			if sys.Steps() >= limit {
				break
			}
			act, ok := sys.Enabled(tr)
			if !ok {
				continue
			}
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				continue
			}
			sys.Apply(tr.Auto, act)
			fired = true
		}
		if !fired {
			return
		}
	}
}

// refRandom is the pre-fast-path random scheduler over the same PRNG:
// collect the un-gated enabled tasks by a full scan in task order, then draw
// uniformly.
func refRandom(sys *ioa.System, rng PRNG, prio Priority, opts Options) {
	limit := opts.maxSteps()
	for sys.Steps() < limit {
		var ready []choice
		best := 0
		for _, tr := range sys.Tasks() {
			act, ok := sys.Enabled(tr)
			if !ok {
				continue
			}
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				continue
			}
			if prio == nil {
				ready = append(ready, choice{tr: tr, act: act})
				continue
			}
			p := prio(tr, act)
			switch {
			case len(ready) == 0 || p > best:
				best = p
				ready = append(ready[:0], choice{tr: tr, act: act})
			case p == best:
				ready = append(ready, choice{tr: tr, act: act})
			}
		}
		if len(ready) == 0 {
			return
		}
		c := ready[rng.Intn(len(ready))]
		sys.Apply(c.tr.Auto, c.act)
	}
}

// fastPathSystem composes enough concurrency to make scan order matter:
// three always-ready tickers, pre-seeded channels whose deliveries re-enable
// nothing, and a two-crash plan behind a gate.
func fastPathSystem(t *testing.T) *ioa.System {
	t.Helper()
	ch01 := system.NewChannel(0, 1)
	ch01.Input(ioa.Send(0, 1, "m1"))
	ch01.Input(ioa.Send(0, 1, "m2"))
	ch10 := system.NewChannel(1, 0)
	ch10.Input(ioa.Send(1, 0, "m3"))
	sys, err := ioa.NewSystem(
		&ticker{id: 0}, ch01, &ticker{id: 1}, ch10, &ticker{id: 2},
		system.NewCrash(system.CrashOf(0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func sameExecution(t *testing.T, name string, fast, ref *ioa.System) {
	t.Helper()
	a, b := fast.Trace(), ref.Trace()
	if len(a) != len(b) {
		t.Fatalf("%s: fast trace %d events, reference %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: schedules diverge at event %d: fast %v, reference %v", name, i, a[i], b[i])
		}
	}
	if fast.Encode() != ref.Encode() {
		t.Fatalf("%s: final states differ:\nfast %s\nref  %s", name, fast.Encode(), ref.Encode())
	}
}

// TestFastPathMatchesReferenceScan: the ready-set schedulers must produce
// executions byte-identical to full-scan reference implementations — same
// PRNG, same gates — because NextReady iterates in ascending task index, the
// order the full scan visits.
func TestFastPathMatchesReferenceScan(t *testing.T) {
	opts := func() Options {
		return Options{MaxSteps: 400, Gate: CrashesAfter(25, 30)}
	}

	t.Run("round-robin", func(t *testing.T) {
		fast, ref := fastPathSystem(t), fastPathSystem(t)
		RoundRobin(fast, opts())
		refRoundRobin(ref, opts())
		sameExecution(t, "round-robin", fast, ref)
	})

	for seed := int64(0); seed < 5; seed++ {
		t.Run("random", func(t *testing.T) {
			fast, ref := fastPathSystem(t), fastPathSystem(t)
			Random(fast, seed, opts())
			refRandom(ref, NewPRNG(seed), nil, opts())
			sameExecution(t, "random", fast, ref)
		})
		t.Run("random-priority", func(t *testing.T) {
			prio := func(_ ioa.TaskRef, act ioa.Action) int {
				if act.Kind == ioa.KindReceive {
					return 1
				}
				return 0
			}
			fast, ref := fastPathSystem(t), fastPathSystem(t)
			RandomPriority(fast, NewPRNG(seed), prio, opts())
			refRandom(ref, NewPRNG(seed), prio, opts())
			sameExecution(t, "random-priority", fast, ref)
		})
	}
}
