// Package sched produces executions of composed I/O automata systems.
//
// A fair execution in the sense of Section 2.4 of the paper gives every task
// infinitely many turns; the round-robin scheduler realizes this directly,
// and the seeded random scheduler realizes it with probability 1.  Both run
// for a bounded number of steps, producing finite prefixes of fair
// executions, which is what all specification checkers in this repository
// consume.
//
// All schedulers draw candidates from the System's incremental ready-set
// (System.NextReady) instead of rescanning the full task list.  The ready-set
// iterates in ascending flattened-task-index order — the same order the
// pre-fast-path full scans visited tasks — so schedules are byte-identical
// to the scan-based implementations (see the repository root's golden-trace
// suite and this package's TestFastPathMatchesReferenceScan).
//
// The crash automaton is special: per Section 4.4 *every* sequence over Iˆ is
// one of its fair traces, so a scheduler may delay enabled crash actions
// arbitrarily without violating fairness.  Options.Gate exploits this to
// control fault timing.
package sched

import (
	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// StopReason says why a run ended.
type StopReason string

// Stop reasons.
const (
	// StopLimit: the step bound was reached.
	StopLimit StopReason = "step-limit"
	// StopQuiescent: no task of the composition is enabled; the system
	// cannot move regardless of gating.
	StopQuiescent StopReason = "quiescent"
	// StopGated: tasks remain enabled, but the run's Gate vetoed every one
	// of them for a full scan at a frozen step count, so no further scan can
	// fire anything (gates are functions of (step, task, action) plus state
	// they only advance when admitting).  Distinguished from StopQuiescent
	// since PR 2: previously RoundRobin reported quiescent after two idle
	// cycles and Random/RandomPriority after one empty candidate scan, both
	// conflating "nothing enabled" with "everything enabled is gated".
	StopGated StopReason = "gated"
	// StopCondition: the Options.Stop predicate (or a Drive strategy)
	// ended the run.
	StopCondition StopReason = "condition"
)

// Gate may veto scheduling an enabled action this turn.  Gating is only
// sound for actions whose automaton tolerates arbitrary delay without
// breaking fairness (crash actions, per §4.4), for bounded delays of other
// actions (a gate that eventually stops vetoing an action only reshuffles
// the fair execution's prefix), or when the run intentionally explores
// unfair schedules (the FLP adversary).
type Gate func(step int, tr ioa.TaskRef, act ioa.Action) bool

// Gates combines gates conjunctively: an action is schedulable only if every
// gate admits it.  Nil gates are skipped.
func Gates(gs ...Gate) Gate {
	return func(step int, tr ioa.TaskRef, act ioa.Action) bool {
		for _, g := range gs {
			if g != nil && !g(step, tr, act) {
				return false
			}
		}
		return true
	}
}

// Options configures a run.
type Options struct {
	// MaxSteps bounds the number of events performed (default 10_000).
	MaxSteps int
	// Stop, when non-nil, is evaluated after every event; returning true
	// ends the run.
	Stop func(sys *ioa.System, last ioa.Action) bool
	// Gate, when non-nil, may veto scheduling an enabled action this turn.
	// Drive ignores it: a Strategy sees the full enabled set and is its own
	// adversary.
	Gate Gate
	// Telemetry, when non-nil, receives scheduler-level metrics and trace
	// events: steps fired (CSchedSteps + per-task fires), gate vetoes
	// (CGateVetoes — enabled actions held back, the §2.4 environment freedom
	// the gate exercises).  Purely observational: it never changes which
	// action fires, so schedules with and without a sink are identical.
	Telemetry telemetry.Sink
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 10_000
	}
	return o.MaxSteps
}

// Result describes a finished run.
type Result struct {
	Steps  int
	Reason StopReason
}

// Stalled reports whether the run ended because nothing could fire —
// genuinely quiescent or fully gated.  Callers that previously compared
// against StopQuiescent to mean "the run ran out of work" should use this.
func (r Result) Stalled() bool {
	return r.Reason == StopQuiescent || r.Reason == StopGated
}

// CrashesAfter returns a Gate that blocks every crash action until the
// system has performed at least step events, releasing the k-th planned
// crash once step + k*gap events have been performed.  With gap = 0 every
// planned crash is released as soon as the step threshold is reached, so the
// whole fault pattern can fire back-to-back.
//
// The gate is a pure function of the step count and the crash task's index:
// the crash automaton sequences its tasks (task k enables only once tasks
// 0..k-1 have fired), so tr.Task is exactly the number of crashes already
// performed.  It used to count *releases* in a closure variable instead,
// which had two bugs, both fixed in PR 2: (1) a scheduler that consults the
// gate while collecting candidates (Random, RandomPriority) ratcheted the
// counter on crashes it then did not draw, postponing the next release by
// gap for every unfired admission — crashes drifted arbitrarily far past
// their thresholds and liveness checks over bounded prefixes flaked; (2)
// sharing one gate value between two runs silently carried the first run's
// release count into the second.  The pure gate is safe to share and
// consult any number of times (see TestCrashesAfterConsultIdempotent and
// TestCrashesAfterSharedGateSafe).
func CrashesAfter(step, gap int) Gate {
	return func(now int, tr ioa.TaskRef, act ioa.Action) bool {
		if act.Kind != ioa.KindCrash {
			return true
		}
		return now >= step+tr.Task*gap
	}
}

// Partition returns a Gate splitting the locations into the two sides of
// mask (bit l set = location l is on side 1): from step `from` on, every
// delivery whose sender and receiver sit on different sides is vetoed, and
// from step `until` on the partition heals and deliveries resume.  An
// `until` ≤ `from` never heals.  Sends are unaffected — messages queue in
// the channel and cross once the partition heals, which is exactly the
// §4.3 reliable-channel reading of a network partition: delivery is
// delayed, not lost (lossy links are the network layer's job, not the
// gate's).  Like CrashesAfter the gate is a pure function of (step,
// action), so it is safe to share and consult any number of times.
//
// A healing partition delays every cross-link delivery by a bounded amount,
// so gated runs remain prefixes of fair executions; a permanent partition
// is unfair to cross-link deliveries and must be paired with safety-only
// checking (chaos.GateSpec.EventuallyFair encodes the distinction).
func Partition(mask uint64, from, until int) Gate {
	return func(now int, _ ioa.TaskRef, act ioa.Action) bool {
		if act.Kind != ioa.KindReceive {
			return true
		}
		if now < from || (until > from && now >= until) {
			return true
		}
		// act.Loc is the receiver, act.Peer the sender.
		return mask>>uint(act.Loc)&1 == mask>>uint(act.Peer)&1
	}
}

// telemetryStep records one fired scheduler step in tel (which must be
// non-nil): the step counter, the per-task fire vector keyed by flattened
// task index, and a sched-category trace instant named after the action.
func telemetryStep(tel telemetry.Sink, idx int, act ioa.Action) {
	tel.Count(telemetry.CSchedSteps, 1)
	tel.IncTask(idx)
	tel.Instant(telemetry.CatSched, act.Name, int32(idx), int64(act.Loc))
}

// stalled classifies an idle scan: StopGated when the gate was the only
// thing holding enabled work back, StopQuiescent otherwise.
func stalled(sys *ioa.System, gated bool) Result {
	if gated {
		return Result{Steps: sys.Steps(), Reason: StopGated}
	}
	return Result{Steps: sys.Steps(), Reason: StopQuiescent}
}

// RoundRobin runs sys under a fair round-robin task schedule until the step
// limit, quiescence (or a fully gated ready-set), or the stop condition.
func RoundRobin(sys *ioa.System, opts Options) Result {
	limit := opts.maxSteps()
	for sys.Steps() < limit {
		fired, gated := false, false
		for idx, ok := sys.NextReady(-1); ok; idx, ok = sys.NextReady(idx) {
			if sys.Steps() >= limit {
				break
			}
			tr, act := sys.TaskAt(idx), sys.ReadyAction(idx)
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				gated = true
				if opts.Telemetry != nil {
					opts.Telemetry.Count(telemetry.CGateVetoes, 1)
				}
				continue
			}
			sys.ApplyReady(idx)
			fired = true
			if opts.Telemetry != nil {
				telemetryStep(opts.Telemetry, idx, act)
			}
			if opts.Stop != nil && opts.Stop(sys, act) {
				return Result{Steps: sys.Steps(), Reason: StopCondition}
			}
		}
		if !fired {
			// The scan admitted nothing at a frozen step count; repeating
			// it cannot differ (gates only advance state when admitting),
			// so one idle scan is conclusive.
			return stalled(sys, gated)
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}
}

// choice pairs a ready task with its enabled action and flattened index.
type choice struct {
	tr  ioa.TaskRef
	act ioa.Action
	idx int
}

// Random runs sys picking uniformly among enabled (and un-gated) tasks.
// Random schedules are fair with probability 1 over infinite runs; over the
// bounded prefix they provide schedule diversity for property tests.
//
// The uniform choice is drawn from the cross-release-stable SplitMix64
// sched.PRNG (the same stream RandomPriority and the chaos replay artifacts
// use), NOT from math/rand: a (seed, gates, plan) triple must replay to the
// identical execution on every Go release.  PR 2 ported Random off
// math/rand, which re-pinned every seed-keyed expectation.
func Random(sys *ioa.System, seed int64, opts Options) Result {
	return randomCore(sys, NewPRNG(seed), nil, opts)
}

// Priority ranks a ready (task, action) pair; RandomPriority only fires
// actions of maximal priority this step.  Priorities may depend on system
// state (e.g. per-channel send stamps) but must be a deterministic function
// of it so runs replay.
type Priority func(tr ioa.TaskRef, act ioa.Action) int

// RandomPriority runs sys picking uniformly — via the deterministic PRNG —
// among the highest-priority enabled (and un-gated) tasks.  With a constant
// priority it behaves like Random over the PRNG; with a skewed priority it
// is an adversarial schedule explorer in the spirit of Drive+Strategy (it
// need not be fair, so pair it with safety-only checkers unless the
// priority is bounded-skew).
func RandomPriority(sys *ioa.System, rng PRNG, prio Priority, opts Options) Result {
	if prio == nil {
		prio = func(ioa.TaskRef, ioa.Action) int { return 0 }
	}
	return randomCore(sys, rng, prio, opts)
}

// randomCore is the shared draw loop: collect the (maximal-priority, when
// prio is non-nil) un-gated ready candidates in task order, then fire one
// uniformly.  Candidate order matches the old full-scan order, so the PRNG
// consumption — hence the schedule — is unchanged by the fast path.
func randomCore(sys *ioa.System, rng PRNG, prio Priority, opts Options) Result {
	limit := opts.maxSteps()
	ready := make([]choice, 0, 64)
	for sys.Steps() < limit {
		ready = ready[:0]
		gated := false
		best := 0
		for idx, ok := sys.NextReady(-1); ok; idx, ok = sys.NextReady(idx) {
			tr, act := sys.TaskAt(idx), sys.ReadyAction(idx)
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				gated = true
				if opts.Telemetry != nil {
					opts.Telemetry.Count(telemetry.CGateVetoes, 1)
				}
				continue
			}
			if prio == nil {
				ready = append(ready, choice{tr, act, idx})
				continue
			}
			p := prio(tr, act)
			switch {
			case len(ready) == 0 || p > best:
				best = p
				ready = append(ready[:0], choice{tr, act, idx})
			case p == best:
				ready = append(ready, choice{tr, act, idx})
			}
		}
		if len(ready) == 0 {
			return stalled(sys, gated)
		}
		c := ready[rng.Intn(len(ready))]
		sys.ApplyReady(c.idx)
		if opts.Telemetry != nil {
			telemetryStep(opts.Telemetry, c.idx, c.act)
		}
		if opts.Stop != nil && opts.Stop(sys, c.act) {
			return Result{Steps: sys.Steps(), Reason: StopCondition}
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}
}

// Strategy chooses the next task among the currently enabled ones; it may
// implement an adversary.  Returning -1 halts the run.  The enabled/acts
// slices are reused by the driver between steps and must not be retained
// past the Choose call.
type Strategy interface {
	Choose(sys *ioa.System, enabled []ioa.TaskRef, acts []ioa.Action) int
}

// StrategyFunc adapts a function to Strategy.
type StrategyFunc func(sys *ioa.System, enabled []ioa.TaskRef, acts []ioa.Action) int

// Choose implements Strategy.
func (f StrategyFunc) Choose(sys *ioa.System, enabled []ioa.TaskRef, acts []ioa.Action) int {
	return f(sys, enabled, acts)
}

// Drive runs sys under the given strategy (which need not be fair) until the
// step limit, quiescence, or the strategy halts.  Options.Gate is ignored:
// the strategy sees the full enabled set.
func Drive(sys *ioa.System, s Strategy, opts Options) Result {
	limit := opts.maxSteps()
	enabled := make([]ioa.TaskRef, 0, 64)
	acts := make([]ioa.Action, 0, 64)
	idxs := make([]int, 0, 64)
	for sys.Steps() < limit {
		enabled, acts, idxs = enabled[:0], acts[:0], idxs[:0]
		for idx, ok := sys.NextReady(-1); ok; idx, ok = sys.NextReady(idx) {
			enabled = append(enabled, sys.TaskAt(idx))
			acts = append(acts, sys.ReadyAction(idx))
			idxs = append(idxs, idx)
		}
		if len(enabled) == 0 {
			return Result{Steps: sys.Steps(), Reason: StopQuiescent}
		}
		k := s.Choose(sys, enabled, acts)
		if k < 0 {
			return Result{Steps: sys.Steps(), Reason: StopCondition}
		}
		sys.ApplyReady(idxs[k])
		if opts.Telemetry != nil {
			telemetryStep(opts.Telemetry, idxs[k], acts[k])
		}
		if opts.Stop != nil && opts.Stop(sys, acts[k]) {
			return Result{Steps: sys.Steps(), Reason: StopCondition}
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}
}
