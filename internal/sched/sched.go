// Package sched produces executions of composed I/O automata systems.
//
// A fair execution in the sense of Section 2.4 of the paper gives every task
// infinitely many turns; the round-robin scheduler realizes this directly,
// and the seeded random scheduler realizes it with probability 1.  Both run
// for a bounded number of steps, producing finite prefixes of fair
// executions, which is what all specification checkers in this repository
// consume.
//
// The crash automaton is special: per Section 4.4 *every* sequence over Iˆ is
// one of its fair traces, so a scheduler may delay enabled crash actions
// arbitrarily without violating fairness.  Options.Gate exploits this to
// control fault timing.
package sched

import (
	"math/rand"

	"repro/internal/ioa"
)

// StopReason says why a run ended.
type StopReason string

// Stop reasons.
const (
	StopLimit     StopReason = "step-limit"
	StopQuiescent StopReason = "quiescent"
	StopCondition StopReason = "condition"
)

// Gate may veto scheduling an enabled action this turn.  Gating is only
// sound for actions whose automaton tolerates arbitrary delay without
// breaking fairness (crash actions, per §4.4), for bounded delays of other
// actions (a gate that eventually stops vetoing an action only reshuffles
// the fair execution's prefix), or when the run intentionally explores
// unfair schedules (the FLP adversary).
type Gate func(step int, tr ioa.TaskRef, act ioa.Action) bool

// Gates combines gates conjunctively: an action is schedulable only if every
// gate admits it.  Nil gates are skipped.
func Gates(gs ...Gate) Gate {
	return func(step int, tr ioa.TaskRef, act ioa.Action) bool {
		for _, g := range gs {
			if g != nil && !g(step, tr, act) {
				return false
			}
		}
		return true
	}
}

// Options configures a run.
type Options struct {
	// MaxSteps bounds the number of events performed (default 10_000).
	MaxSteps int
	// Stop, when non-nil, is evaluated after every event; returning true
	// ends the run.
	Stop func(sys *ioa.System, last ioa.Action) bool
	// Gate, when non-nil, may veto scheduling an enabled action this turn.
	Gate Gate
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 10_000
	}
	return o.MaxSteps
}

// Result describes a finished run.
type Result struct {
	Steps  int
	Reason StopReason
}

// CrashesAfter returns a Gate that blocks every crash action until the
// system has performed at least step events, releasing the k-th planned
// crash only after step + k*gap further events.  With gap = 0 every planned
// crash is released as soon as the step threshold is reached, so the whole
// fault pattern can fire back-to-back.
//
// The returned gate is STATEFUL: it counts how many crashes it has released.
// Construct a fresh gate per run — sharing one gate value between two runs
// makes the second run inherit the first run's release count, silently
// postponing its crashes by released*gap extra steps (see
// TestCrashesAfterSharedGateHazard).  Note also that under schedulers which
// consult the gate without necessarily firing the admitted action in the
// same step (Random builds a candidate set first), the release counter can
// advance faster than crashes actually fire; this only ever releases
// *earlier*, never suppresses, so the gate remains delay-only.
func CrashesAfter(step, gap int) Gate {
	released := 0
	return func(now int, _ ioa.TaskRef, act ioa.Action) bool {
		if act.Kind != ioa.KindCrash {
			return true
		}
		if now >= step+released*gap {
			released++
			return true
		}
		return false
	}
}

// RoundRobin runs sys under a fair round-robin task schedule until the step
// limit, quiescence, or the stop condition.
func RoundRobin(sys *ioa.System, opts Options) Result {
	limit := opts.maxSteps()
	tasks := sys.Tasks()
	idleCycles := 0
	for sys.Steps() < limit {
		fired := false
		for _, tr := range tasks {
			if sys.Steps() >= limit {
				break
			}
			act, ok := sys.Enabled(tr)
			if !ok {
				continue
			}
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				continue
			}
			sys.Apply(tr.Auto, act)
			fired = true
			if opts.Stop != nil && opts.Stop(sys, act) {
				return Result{Steps: sys.Steps(), Reason: StopCondition}
			}
		}
		if !fired {
			idleCycles++
			// One fully idle cycle means nothing is enabled (or all
			// enabled actions are gated); a second confirms no gate
			// released anything based on the step count.
			if idleCycles >= 2 {
				return Result{Steps: sys.Steps(), Reason: StopQuiescent}
			}
		} else {
			idleCycles = 0
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}
}

// choice pairs a ready task with its enabled action.
type choice struct {
	tr  ioa.TaskRef
	act ioa.Action
}

// Random runs sys picking uniformly among enabled (and un-gated) tasks.
// Random schedules are fair with probability 1 over infinite runs; over the
// bounded prefix they provide schedule diversity for property tests.
func Random(sys *ioa.System, seed int64, opts Options) Result {
	rng := rand.New(rand.NewSource(seed))
	limit := opts.maxSteps()
	tasks := sys.Tasks()
	ready := make([]choice, 0, len(tasks))
	for sys.Steps() < limit {
		ready = ready[:0]
		for _, tr := range tasks {
			act, ok := sys.Enabled(tr)
			if !ok {
				continue
			}
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				continue
			}
			ready = append(ready, choice{tr, act})
		}
		if len(ready) == 0 {
			return Result{Steps: sys.Steps(), Reason: StopQuiescent}
		}
		c := ready[rng.Intn(len(ready))]
		sys.Apply(c.tr.Auto, c.act)
		if opts.Stop != nil && opts.Stop(sys, c.act) {
			return Result{Steps: sys.Steps(), Reason: StopCondition}
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}
}

// Priority ranks a ready (task, action) pair; RandomPriority only fires
// actions of maximal priority this step.  Priorities may depend on system
// state (e.g. per-channel send stamps) but must be a deterministic function
// of it so runs replay.
type Priority func(tr ioa.TaskRef, act ioa.Action) int

// RandomPriority runs sys picking uniformly — via the deterministic PRNG —
// among the highest-priority enabled (and un-gated) tasks.  With a constant
// priority it behaves like Random over the PRNG; with a skewed priority it
// is an adversarial schedule explorer in the spirit of Drive+Strategy (it
// need not be fair, so pair it with safety-only checkers unless the
// priority is bounded-skew).
func RandomPriority(sys *ioa.System, rng PRNG, prio Priority, opts Options) Result {
	limit := opts.maxSteps()
	tasks := sys.Tasks()
	ready := make([]choice, 0, len(tasks))
	for sys.Steps() < limit {
		ready = ready[:0]
		best := 0
		for _, tr := range tasks {
			act, ok := sys.Enabled(tr)
			if !ok {
				continue
			}
			if opts.Gate != nil && !opts.Gate(sys.Steps(), tr, act) {
				continue
			}
			p := prio(tr, act)
			switch {
			case len(ready) == 0 || p > best:
				best = p
				ready = append(ready[:0], choice{tr, act})
			case p == best:
				ready = append(ready, choice{tr, act})
			}
		}
		if len(ready) == 0 {
			return Result{Steps: sys.Steps(), Reason: StopQuiescent}
		}
		c := ready[rng.Intn(len(ready))]
		sys.Apply(c.tr.Auto, c.act)
		if opts.Stop != nil && opts.Stop(sys, c.act) {
			return Result{Steps: sys.Steps(), Reason: StopCondition}
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}
}

// Strategy chooses the next task among the currently enabled ones; it may
// implement an adversary.  Returning -1 halts the run.  The enabled/acts
// slices are reused by the driver between steps and must not be retained
// past the Choose call.
type Strategy interface {
	Choose(sys *ioa.System, enabled []ioa.TaskRef, acts []ioa.Action) int
}

// StrategyFunc adapts a function to Strategy.
type StrategyFunc func(sys *ioa.System, enabled []ioa.TaskRef, acts []ioa.Action) int

// Choose implements Strategy.
func (f StrategyFunc) Choose(sys *ioa.System, enabled []ioa.TaskRef, acts []ioa.Action) int {
	return f(sys, enabled, acts)
}

// Drive runs sys under the given strategy (which need not be fair) until the
// step limit, quiescence, or the strategy halts.
func Drive(sys *ioa.System, s Strategy, opts Options) Result {
	limit := opts.maxSteps()
	tasks := sys.Tasks()
	enabled := make([]ioa.TaskRef, 0, len(tasks))
	acts := make([]ioa.Action, 0, len(tasks))
	for sys.Steps() < limit {
		enabled, acts = enabled[:0], acts[:0]
		for _, tr := range tasks {
			if act, ok := sys.Enabled(tr); ok {
				enabled = append(enabled, tr)
				acts = append(acts, act)
			}
		}
		if len(enabled) == 0 {
			return Result{Steps: sys.Steps(), Reason: StopQuiescent}
		}
		k := s.Choose(sys, enabled, acts)
		if k < 0 {
			return Result{Steps: sys.Steps(), Reason: StopCondition}
		}
		sys.Apply(enabled[k].Auto, acts[k])
		if opts.Stop != nil && opts.Stop(sys, acts[k]) {
			return Result{Steps: sys.Steps(), Reason: StopCondition}
		}
	}
	return Result{Steps: sys.Steps(), Reason: StopLimit}
}
