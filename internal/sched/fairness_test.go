package sched

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/system"
)

func TestAuditedRoundRobinIsFair(t *testing.T) {
	sys := build(t, system.NoFaults())
	res, err := AuditedRoundRobin(sys, Options{MaxSteps: 100})
	if err != nil {
		t.Fatalf("round-robin failed its own fairness audit: %v", err)
	}
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s", res.Reason)
	}
}

func TestFairnessAuditDetectsStarvation(t *testing.T) {
	tasks := []ioa.TaskRef{{Auto: 0, Task: 0}, {Auto: 1, Task: 0}}
	a := NewFairnessAudit(tasks, 3)
	for i := 0; i < 10; i++ {
		a.Observe(tasks[0]) // only task 0 ever gets a turn
		a.Tick()
	}
	if err := a.Err(); err == nil {
		t.Fatal("starvation of task 1 not detected")
	}
}

func TestFairnessAuditPassesAlternation(t *testing.T) {
	tasks := []ioa.TaskRef{{Auto: 0, Task: 0}, {Auto: 1, Task: 0}}
	a := NewFairnessAudit(tasks, 3)
	for i := 0; i < 10; i++ {
		a.Observe(tasks[i%2])
		a.Tick()
	}
	if err := a.Err(); err != nil {
		t.Fatalf("alternation flagged as unfair: %v", err)
	}
}

// TestAuditedRoundRobinGateVetoIsNotStarvation is the regression test for
// the audit miscounting gate-vetoed turns as scheduler starvation: the
// scheduler offered the task its turn every pass, and the *gate* (the
// environment's timing freedom, §2.4) withheld the action.  Ticker 1 is
// vetoed for 20 steps — well past the audit window of 4×2 tasks = 8 — while
// ticker 0 keeps the run advancing; the audit must stay clean.  Before the
// fix the veto branch skipped the ACK, so lastACK[ticker 1] froze at 0 and
// the window check reported a starvation that never happened.
func TestAuditedRoundRobinGateVetoIsNotStarvation(t *testing.T) {
	sys, err := ioa.NewSystem(&ticker{id: 0}, &ticker{id: 1})
	if err != nil {
		t.Fatal(err)
	}
	const release = 20
	gate := Gate(func(step int, tr ioa.TaskRef, _ ioa.Action) bool {
		return tr.Auto != 1 || step >= release
	})
	res, auditErr := AuditedRoundRobin(sys, Options{MaxSteps: 60, Gate: gate})
	if auditErr != nil {
		t.Fatalf("gate veto flagged as starvation: %v", auditErr)
	}
	if res.Reason != StopLimit {
		t.Fatalf("reason = %s, want %s", res.Reason, StopLimit)
	}
	// The gate really did release: ticker 1 fired after the delay.
	fired := 0
	for _, a := range sys.Trace() {
		if a.Loc == 1 {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("gate never released ticker 1; test exercised nothing")
	}
}

// TestStalledMixedGatesReportsStopGated pins the Stalled/StopGated contract
// under a mixed stall: one part of the system genuinely quiesces (chan[1>0]
// drains its single message) while another stays enabled but permanently
// gated (chan[0>1]'s deliveries are vetoed forever).  Every scheduler must
// classify that scan as StopGated — the gate, not quiescence, is what holds
// the run — and Result.Stalled must be true either way.
func TestStalledMixedGatesReportsStopGated(t *testing.T) {
	gate := Gate(func(_ int, _ ioa.TaskRef, act ioa.Action) bool {
		return !(act.Kind == ioa.KindReceive && act.Loc == 1)
	})
	for _, tc := range []struct {
		name string
		run  func(sys *ioa.System) Result
	}{
		{"round-robin", func(sys *ioa.System) Result {
			return RoundRobin(sys, Options{MaxSteps: 100, Gate: gate})
		}},
		{"random", func(sys *ioa.System) Result {
			return Random(sys, 11, Options{MaxSteps: 100, Gate: gate})
		}},
		{"random-priority", func(sys *ioa.System) Result {
			return RandomPriority(sys, NewPRNG(11),
				func(_ ioa.TaskRef, act ioa.Action) int { return len(act.Payload) },
				Options{MaxSteps: 100, Gate: gate})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := build(t, system.NoFaults())
			res := tc.run(sys)
			if res.Reason != StopGated {
				t.Fatalf("reason = %s, want %s", res.Reason, StopGated)
			}
			if !res.Stalled() {
				t.Fatal("Stalled() = false on a gated stall")
			}
			if res.Steps != 1 {
				t.Fatalf("steps = %d, want exactly the ungated m3 delivery", res.Steps)
			}
			if sys.Quiescent() {
				t.Fatal("system reported quiescent with gated work pending")
			}
		})
	}
}

// TestStarveStrategy: the starvation adversary withholds one channel's
// deliveries while other work exists, but safety (FIFO content) is
// unaffected — only liveness suffers.
func TestStarveStrategy(t *testing.T) {
	sys := build(t, system.NoFaults())
	// Automaton 0 is chan[0>1] holding m1, m2; automaton 1 is chan[1>0]
	// holding m3.  Starving automaton 0 forces m3 first.
	res := Drive(sys, Starve(0), Options{MaxSteps: 100})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s", res.Reason)
	}
	tr := sys.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace = %v", tr)
	}
	if tr[0].Payload != "m3" {
		t.Fatalf("starved channel delivered first: %v", tr)
	}
	// FIFO within the starved channel still holds.
	if tr[1].Payload != "m1" || tr[2].Payload != "m2" {
		t.Fatalf("FIFO violated under unfair schedule: %v", tr)
	}
}
