package sched

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/system"
)

func TestAuditedRoundRobinIsFair(t *testing.T) {
	sys := build(t, system.NoFaults())
	res, err := AuditedRoundRobin(sys, Options{MaxSteps: 100})
	if err != nil {
		t.Fatalf("round-robin failed its own fairness audit: %v", err)
	}
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s", res.Reason)
	}
}

func TestFairnessAuditDetectsStarvation(t *testing.T) {
	tasks := []ioa.TaskRef{{Auto: 0, Task: 0}, {Auto: 1, Task: 0}}
	a := NewFairnessAudit(tasks, 3)
	for i := 0; i < 10; i++ {
		a.Observe(tasks[0]) // only task 0 ever gets a turn
		a.Tick()
	}
	if err := a.Err(); err == nil {
		t.Fatal("starvation of task 1 not detected")
	}
}

func TestFairnessAuditPassesAlternation(t *testing.T) {
	tasks := []ioa.TaskRef{{Auto: 0, Task: 0}, {Auto: 1, Task: 0}}
	a := NewFairnessAudit(tasks, 3)
	for i := 0; i < 10; i++ {
		a.Observe(tasks[i%2])
		a.Tick()
	}
	if err := a.Err(); err != nil {
		t.Fatalf("alternation flagged as unfair: %v", err)
	}
}

// TestStarveStrategy: the starvation adversary withholds one channel's
// deliveries while other work exists, but safety (FIFO content) is
// unaffected — only liveness suffers.
func TestStarveStrategy(t *testing.T) {
	sys := build(t, system.NoFaults())
	// Automaton 0 is chan[0>1] holding m1, m2; automaton 1 is chan[1>0]
	// holding m3.  Starving automaton 0 forces m3 first.
	res := Drive(sys, Starve(0), Options{MaxSteps: 100})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s", res.Reason)
	}
	tr := sys.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace = %v", tr)
	}
	if tr[0].Payload != "m3" {
		t.Fatalf("starved channel delivered first: %v", tr)
	}
	// FIFO within the starved channel still holds.
	if tr[1].Payload != "m1" || tr[2].Payload != "m2" {
		t.Fatalf("FIFO violated under unfair schedule: %v", tr)
	}
}
