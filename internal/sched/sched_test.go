package sched

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/system"
)

// build composes the Ω-style generator stand-in: a crash automaton plus two
// channels carrying a pre-seeded message, enough to exercise scheduling.
func build(t *testing.T, plan system.FaultPlan) *ioa.System {
	t.Helper()
	ch01 := system.NewChannel(0, 1)
	ch01.Input(ioa.Send(0, 1, "m1"))
	ch01.Input(ioa.Send(0, 1, "m2"))
	ch10 := system.NewChannel(1, 0)
	ch10.Input(ioa.Send(1, 0, "m3"))
	sys, err := ioa.NewSystem(ch01, ch10, system.NewCrash(plan))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRoundRobinDrainsToQuiescence(t *testing.T) {
	sys := build(t, system.NoFaults())
	res := RoundRobin(sys, Options{MaxSteps: 100})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s, want quiescent", res.Reason)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3 deliveries", res.Steps)
	}
	if !sys.Quiescent() {
		t.Fatal("system not quiescent after drain")
	}
}

func TestRoundRobinRespectsLimit(t *testing.T) {
	sys := build(t, system.NoFaults())
	res := RoundRobin(sys, Options{MaxSteps: 2})
	if res.Reason != StopLimit || res.Steps != 2 {
		t.Fatalf("res = %+v, want limit at 2", res)
	}
}

func TestRoundRobinStopCondition(t *testing.T) {
	sys := build(t, system.NoFaults())
	res := RoundRobin(sys, Options{
		MaxSteps: 100,
		Stop: func(_ *ioa.System, last ioa.Action) bool {
			return last.Kind == ioa.KindReceive
		},
	})
	if res.Reason != StopCondition || res.Steps != 1 {
		t.Fatalf("res = %+v, want stop after first receive", res)
	}
}

func TestRoundRobinGateBlocksCrash(t *testing.T) {
	sys := build(t, system.CrashOf(0))
	res := RoundRobin(sys, Options{
		MaxSteps: 100,
		Gate:     CrashesAfter(1000, 0),
	})
	// All channel deliveries happen; the crash stays gated forever.  Since
	// PR 2 that is reported as StopGated, not StopQuiescent: the crash task
	// is still enabled, only the gate holds it back.
	if res.Reason != StopGated {
		t.Fatalf("reason = %s, want gated", res.Reason)
	}
	for _, a := range sys.Trace() {
		if a.Kind == ioa.KindCrash {
			t.Fatal("gated crash fired")
		}
	}
}

// TestStallReasonsDistinguished (PR 2 satellite): every scheduler reports
// StopQuiescent when nothing is enabled and StopGated when enabled work is
// held back by a never-releasing gate; Result.Stalled covers both, and a
// step-limited run is not stalled.
func TestStallReasonsDistinguished(t *testing.T) {
	schedulers := map[string]func(*ioa.System, Options) Result{
		"round-robin": RoundRobin,
		"random": func(s *ioa.System, o Options) Result {
			return Random(s, 3, o)
		},
		"random-priority": func(s *ioa.System, o Options) Result {
			return RandomPriority(s, NewPRNG(3),
				func(ioa.TaskRef, ioa.Action) int { return 0 }, o)
		},
	}
	for name, run := range schedulers {
		t.Run(name, func(t *testing.T) {
			// No fault plan, no gate: the channels drain and the system is
			// truly quiescent.
			sys := build(t, system.NoFaults())
			res := run(sys, Options{MaxSteps: 100})
			if res.Reason != StopQuiescent {
				t.Fatalf("drained reason = %s, want quiescent", res.Reason)
			}
			if !res.Stalled() {
				t.Fatal("quiescent run not Stalled()")
			}
			if !sys.Quiescent() {
				t.Fatal("system reports non-quiescent after drain")
			}

			// A planned crash behind a gate that never releases: the crash
			// task stays enabled, so the run is gated, not quiescent.
			sys = build(t, system.CrashOf(0))
			res = run(sys, Options{MaxSteps: 100, Gate: CrashesAfter(1000, 0)})
			if res.Reason != StopGated {
				t.Fatalf("gated reason = %s, want gated", res.Reason)
			}
			if !res.Stalled() {
				t.Fatal("gated run not Stalled()")
			}
			if sys.Quiescent() {
				t.Fatal("system reports quiescent while a crash task is enabled")
			}

			// A step-limited run is not stalled.
			sys = build(t, system.CrashOf(0))
			res = run(sys, Options{MaxSteps: 2, Gate: CrashesAfter(1000, 0)})
			if res.Reason != StopLimit || res.Stalled() {
				t.Fatalf("limited run = %+v, want step-limit and not stalled", res)
			}
		})
	}
}

func TestCrashesAfterReleasesInOrder(t *testing.T) {
	sys := build(t, system.CrashOf(0, 1))
	RoundRobin(sys, Options{MaxSteps: 100, Gate: CrashesAfter(2, 1)})
	var crashes []ioa.Loc
	for _, a := range sys.Trace() {
		if a.Kind == ioa.KindCrash {
			crashes = append(crashes, a.Loc)
		}
	}
	if len(crashes) != 2 || crashes[0] != 0 || crashes[1] != 1 {
		t.Fatalf("crashes = %v, want [0 1]", crashes)
	}
}

func TestRandomIsSeededAndComplete(t *testing.T) {
	run := func(seed int64) []ioa.Action {
		sys := build(t, system.NoFaults())
		res := Random(sys, seed, Options{MaxSteps: 100})
		if res.Reason != StopQuiescent {
			t.Fatalf("reason = %s", res.Reason)
		}
		return append([]ioa.Action(nil), sys.Trace()...)
	}
	a := run(1)
	b := run(1)
	if len(a) != len(b) {
		t.Fatal("same seed, different runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different event order")
		}
	}
	// All three deliveries happen under any seed.
	if len(a) != 3 {
		t.Fatalf("trace length = %d, want 3", len(a))
	}
}

func TestRandomDifferentSeedsDiffer(t *testing.T) {
	traces := make(map[string]bool)
	for seed := int64(0); seed < 8; seed++ {
		sys := build(t, system.NoFaults())
		Random(sys, seed, Options{MaxSteps: 100})
		var s string
		for _, a := range sys.Trace() {
			s += a.String() + ";"
		}
		traces[s] = true
	}
	if len(traces) < 2 {
		t.Error("eight seeds produced a single schedule; RNG not wired")
	}
}

func TestDriveStrategy(t *testing.T) {
	sys := build(t, system.NoFaults())
	// Always pick the last enabled choice; halts when told.
	picks := 0
	res := Drive(sys, StrategyFunc(func(_ *ioa.System, enabled []ioa.TaskRef, _ []ioa.Action) int {
		picks++
		if picks > 2 {
			return -1
		}
		return len(enabled) - 1
	}), Options{MaxSteps: 100})
	if res.Reason != StopCondition {
		t.Fatalf("reason = %s, want condition (strategy halt)", res.Reason)
	}
	if sys.Steps() != 2 {
		t.Fatalf("steps = %d, want 2", sys.Steps())
	}
}

func TestDriveQuiescent(t *testing.T) {
	sys := build(t, system.NoFaults())
	res := Drive(sys, StrategyFunc(func(_ *ioa.System, _ []ioa.TaskRef, _ []ioa.Action) int {
		return 0
	}), Options{MaxSteps: 100})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s", res.Reason)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.maxSteps() != 10_000 {
		t.Errorf("default MaxSteps = %d", o.maxSteps())
	}
}
