package sched

import (
	"fmt"
	"testing"

	"repro/internal/ioa"
	"repro/internal/system"
)

// TestCrashesAfterSharedGateSafe: CrashesAfter is a pure function since the
// PR-2 fix, so sharing one gate value between runs is harmless.  The old
// stateful gate carried its release counter from the first run into the
// second, which silently suppressed the second run's crashes.
func TestCrashesAfterSharedGateSafe(t *testing.T) {
	countCrashes := func(gate Gate) int {
		sys := build(t, system.CrashOf(0))
		RoundRobin(sys, Options{MaxSteps: 50, Gate: gate})
		n := 0
		for _, a := range sys.Trace() {
			if a.Kind == ioa.KindCrash {
				n++
			}
		}
		return n
	}
	shared := CrashesAfter(1, 40)
	if got := countCrashes(shared); got != 1 {
		t.Fatalf("shared gate run 1: %d crashes, want 1", got)
	}
	if got := countCrashes(shared); got != 1 {
		t.Fatalf("shared gate run 2: %d crashes, want 1 (gate must be stateless)", got)
	}
}

// ticker is an always-enabled single-task automaton with no inputs; it gives
// the random schedulers a perpetual non-crash candidate so gate behavior can
// be observed over long runs.
type ticker struct {
	id    ioa.Loc
	fired int
}

var _ ioa.Automaton = (*ticker)(nil)
var _ ioa.Signatured = (*ticker)(nil)

func (k *ticker) Name() string                { return fmt.Sprintf("ticker[%v]", k.id) }
func (k *ticker) Accepts(ioa.Action) bool     { return false }
func (k *ticker) SignatureKeys() []ioa.SigKey { return nil }
func (k *ticker) Input(ioa.Action)            {}
func (k *ticker) NumTasks() int               { return 1 }
func (k *ticker) TaskLabel(int) string        { return "tick" }
func (k *ticker) Fire(ioa.Action)             { k.fired++ }
func (k *ticker) Clone() ioa.Automaton        { c := *k; return &c }
func (k *ticker) Encode() string              { return "T" }
func (k *ticker) Enabled(int) (ioa.Action, bool) {
	return ioa.EnvOutput("tick", k.id, ""), true
}

// TestCrashesAfterConsultIdempotent is the regression test for the PR-2
// release-ratchet bug: Random consults the gate for every candidate it
// collects, and the old stateful CrashesAfter advanced its release counter
// on each *admission*, so a crash that was admitted into the candidate set
// but not drawn postponed the next release by gap.  With three always-ready
// tickers competing, crashes drifted arbitrarily far past their thresholds
// (hundreds of steps in practice).  The pure gate releases the k-th crash
// at exactly step + k*gap no matter how often it is consulted, so under a
// uniform pick among four ready tasks the crash must land within a short
// geometric tail of its threshold.
func TestCrashesAfterConsultIdempotent(t *testing.T) {
	const after, gap, slack = 20, 10, 80
	for seed := int64(0); seed < 10; seed++ {
		sys, err := ioa.NewSystem(
			&ticker{id: 0}, &ticker{id: 1}, &ticker{id: 2},
			system.NewCrash(system.CrashOf(0, 1)),
		)
		if err != nil {
			t.Fatal(err)
		}
		Random(sys, seed, Options{MaxSteps: 300, Gate: CrashesAfter(after, gap)})
		var crashAt []int
		for i, a := range sys.Trace() {
			if a.Kind == ioa.KindCrash {
				crashAt = append(crashAt, i)
			}
		}
		if len(crashAt) != 2 {
			t.Fatalf("seed %d: %d crashes fired, want 2", seed, len(crashAt))
		}
		for k, at := range crashAt {
			lo := after + k*gap
			if at < lo {
				t.Fatalf("seed %d: crash %d at step %d, before threshold %d", seed, k, at, lo)
			}
			if at > lo+slack {
				t.Fatalf("seed %d: crash %d at step %d, release ratchet? threshold %d",
					seed, k, at, lo)
			}
		}
	}
}

// TestCrashesAfterGapZeroReleasesAllAtOnce is the regression test for the
// gap = 0 edge case: once the step threshold is reached, every planned
// crash is released back-to-back.
func TestCrashesAfterGapZeroReleasesAllAtOnce(t *testing.T) {
	sys := build(t, system.CrashOf(0, 1, 0))
	RoundRobin(sys, Options{MaxSteps: 100, Gate: CrashesAfter(3, 0)})
	var crashSteps []int
	for i, a := range sys.Trace() {
		if a.Kind == ioa.KindCrash {
			crashSteps = append(crashSteps, i)
		}
	}
	if len(crashSteps) != 3 {
		t.Fatalf("%d crashes fired, want all 3", len(crashSteps))
	}
	if crashSteps[0] < 3 {
		t.Fatalf("first crash at trace index %d, before threshold", crashSteps[0])
	}
	// Back-to-back: consecutive trace positions once released.
	for i := 1; i < len(crashSteps); i++ {
		if crashSteps[i] != crashSteps[i-1]+1 {
			t.Fatalf("crashes not back-to-back at indices %v", crashSteps)
		}
	}
}

func TestGatesConjunction(t *testing.T) {
	always := Gate(func(int, ioa.TaskRef, ioa.Action) bool { return true })
	never := Gate(func(int, ioa.TaskRef, ioa.Action) bool { return false })
	g := Gates(always, nil, never)
	if g(0, ioa.TaskRef{}, ioa.Action{}) {
		t.Fatal("conjunction with a vetoing gate admitted an action")
	}
	g = Gates(always, nil)
	if !g(0, ioa.TaskRef{}, ioa.Action{}) {
		t.Fatal("conjunction of admitting gates vetoed an action")
	}
}

func TestPRNGDeterministicAndSpread(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Intn(97) != b.Intn(97) {
			t.Fatal("same seed diverged")
		}
	}
	seen := make(map[int]bool)
	r := NewPRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("1000 draws hit only %d/10 values", len(seen))
	}
}

func TestRandomPriorityPrefersHighPriority(t *testing.T) {
	// Priority favoring the 1→0 channel: its delivery must fire first even
	// though two 0→1 messages are also ready.
	sys := build(t, system.NoFaults())
	res := RandomPriority(sys, NewPRNG(1), func(_ ioa.TaskRef, act ioa.Action) int {
		if act.Kind == ioa.KindReceive && act.Peer == 1 {
			return 1
		}
		return 0
	}, Options{MaxSteps: 100})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s", res.Reason)
	}
	tr := sys.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length = %d, want 3", len(tr))
	}
	if tr[0].Peer != 1 || tr[0].Kind != ioa.KindReceive {
		t.Fatalf("first event %v, want the prioritized 1→0 delivery", tr[0])
	}
}

func TestRandomPriorityDeterministicPerSeed(t *testing.T) {
	run := func() []ioa.Action {
		sys := build(t, system.CrashOf(1))
		RandomPriority(sys, NewPRNG(9), func(ioa.TaskRef, ioa.Action) int { return 0 },
			Options{MaxSteps: 100})
		return append([]ioa.Action(nil), sys.Trace()...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different schedules")
		}
	}
}
