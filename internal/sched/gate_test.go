package sched

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/system"
)

// TestCrashesAfterSharedGateHazard demonstrates why CrashesAfter must be
// constructed once per run: the gate's release counter survives the first
// run, so a second run sharing the gate value sees its first crash held to
// the *second* release threshold.
func TestCrashesAfterSharedGateHazard(t *testing.T) {
	countCrashes := func(gate Gate) int {
		sys := build(t, system.CrashOf(0))
		RoundRobin(sys, Options{MaxSteps: 50, Gate: gate})
		n := 0
		for _, a := range sys.Trace() {
			if a.Kind == ioa.KindCrash {
				n++
			}
		}
		return n
	}

	// Fresh gate per run: the crash releases at step >= 1 in both runs.
	if got := countCrashes(CrashesAfter(1, 40)); got != 1 {
		t.Fatalf("fresh gate run 1: %d crashes, want 1", got)
	}
	if got := countCrashes(CrashesAfter(1, 40)); got != 1 {
		t.Fatalf("fresh gate run 2: %d crashes, want 1", got)
	}

	// Shared gate: run 1 consumes release 0; run 2's crash now needs
	// step >= 1 + 1*40 = 41, beyond anything its short run reaches, so the
	// crash silently never fires.
	shared := CrashesAfter(1, 40)
	if got := countCrashes(shared); got != 1 {
		t.Fatalf("shared gate run 1: %d crashes, want 1", got)
	}
	if got := countCrashes(shared); got != 0 {
		t.Fatalf("shared gate run 2: %d crashes, want 0 (stateful hazard)", got)
	}
}

// TestCrashesAfterGapZeroReleasesAllAtOnce is the regression test for the
// gap = 0 edge case: once the step threshold is reached, every planned
// crash is released back-to-back.
func TestCrashesAfterGapZeroReleasesAllAtOnce(t *testing.T) {
	sys := build(t, system.CrashOf(0, 1, 0))
	RoundRobin(sys, Options{MaxSteps: 100, Gate: CrashesAfter(3, 0)})
	var crashSteps []int
	for i, a := range sys.Trace() {
		if a.Kind == ioa.KindCrash {
			crashSteps = append(crashSteps, i)
		}
	}
	if len(crashSteps) != 3 {
		t.Fatalf("%d crashes fired, want all 3", len(crashSteps))
	}
	if crashSteps[0] < 3 {
		t.Fatalf("first crash at trace index %d, before threshold", crashSteps[0])
	}
	// Back-to-back: consecutive trace positions once released.
	for i := 1; i < len(crashSteps); i++ {
		if crashSteps[i] != crashSteps[i-1]+1 {
			t.Fatalf("crashes not back-to-back at indices %v", crashSteps)
		}
	}
}

func TestGatesConjunction(t *testing.T) {
	always := Gate(func(int, ioa.TaskRef, ioa.Action) bool { return true })
	never := Gate(func(int, ioa.TaskRef, ioa.Action) bool { return false })
	g := Gates(always, nil, never)
	if g(0, ioa.TaskRef{}, ioa.Action{}) {
		t.Fatal("conjunction with a vetoing gate admitted an action")
	}
	g = Gates(always, nil)
	if !g(0, ioa.TaskRef{}, ioa.Action{}) {
		t.Fatal("conjunction of admitting gates vetoed an action")
	}
}

func TestPRNGDeterministicAndSpread(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Intn(97) != b.Intn(97) {
			t.Fatal("same seed diverged")
		}
	}
	seen := make(map[int]bool)
	r := NewPRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("1000 draws hit only %d/10 values", len(seen))
	}
}

func TestRandomPriorityPrefersHighPriority(t *testing.T) {
	// Priority favoring the 1→0 channel: its delivery must fire first even
	// though two 0→1 messages are also ready.
	sys := build(t, system.NoFaults())
	res := RandomPriority(sys, NewPRNG(1), func(_ ioa.TaskRef, act ioa.Action) int {
		if act.Kind == ioa.KindReceive && act.Peer == 1 {
			return 1
		}
		return 0
	}, Options{MaxSteps: 100})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %s", res.Reason)
	}
	tr := sys.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length = %d, want 3", len(tr))
	}
	if tr[0].Peer != 1 || tr[0].Kind != ioa.KindReceive {
		t.Fatalf("first event %v, want the prioritized 1→0 delivery", tr[0])
	}
}

func TestRandomPriorityDeterministicPerSeed(t *testing.T) {
	run := func() []ioa.Action {
		sys := build(t, system.CrashOf(1))
		RandomPriority(sys, NewPRNG(9), func(ioa.TaskRef, ioa.Action) int { return 0 },
			Options{MaxSteps: 100})
		return append([]ioa.Action(nil), sys.Trace()...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different schedules")
		}
	}
}
