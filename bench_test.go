// Package repro's root benchmark suite: one benchmark per experiment table
// of EXPERIMENTS.md (E1–E16 in DESIGN.md).  Benchmarks report, beyond ns/op,
// the domain metrics the experiments tabulate (events, messages, rounds,
// nodes) via b.ReportMetric.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/problems"
	"repro/internal/sched"
	"repro/internal/selfimpl"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/transform"
	"repro/internal/valence"
)

// BenchmarkSystemThroughput is E1: event throughput of the composed
// Figure-1 system as n grows.
func BenchmarkSystemThroughput(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := afd.Lookup(afd.FamilyP, n)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				autos := []ioa.Automaton{d.Automaton(n)}
				autos = append(autos, system.Channels(n)...)
				autos = append(autos, system.NewCrash(system.NoFaults()))
				sys := ioa.MustNewSystem(autos...)
				sys.SetTraceMode(ioa.TraceOff, 0) // throughput, not trace content
				sched.RoundRobin(sys, sched.Options{MaxSteps: 10_000})
				b.ReportMetric(float64(sys.Steps()), "events/op")
			}
		})
	}
}

// BenchmarkSystemThroughputOracle is E1 with the differential oracle
// attached: channel shadows on every event plus full enabled-set/delivery-set
// sweeps every DefaultStride events.  Comparing against
// BenchmarkSystemThroughput measures the oracle's overhead, which the design
// budget caps at 3× (the strided sweep amortizes the O(tasks) reference
// re-derivation over DefaultStride O(1) fast-path steps).
func BenchmarkSystemThroughputOracle(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := afd.Lookup(afd.FamilyP, n)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				autos := []ioa.Automaton{d.Automaton(n)}
				autos = append(autos, system.Channels(n)...)
				autos = append(autos, system.NewCrash(system.NoFaults()))
				sys := ioa.MustNewSystem(autos...)
				sys.SetTraceMode(ioa.TraceOff, 0) // same mode as the baseline it is compared to
				o := oracle.Attach(sys, oracle.Options{Shadow: true})
				sched.RoundRobin(sys, sched.Options{MaxSteps: 10_000})
				if err := o.Check(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sys.Steps()), "events/op")
			}
		})
	}
}

// BenchmarkOmegaAutomaton is E2: Algorithm 1 under a fault plan.
func BenchmarkOmegaAutomaton(b *testing.B) {
	const n = 4
	for i := 0; i < b.N; i++ {
		_, err := afd.RunCanonical(afd.Omega{}, afd.RunSpec{
			N: n, Crash: []ioa.Loc{0}, Steps: 400, Seed: -1, CrashGate: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorZoo is E4: generate and membership-check every detector.
func BenchmarkDetectorZoo(b *testing.B) {
	const n = 4
	w := afd.DefaultWindow()
	for fam, d := range afd.Standard(n) {
		b.Run(fam, func(b *testing.B) {
			tr, err := afd.RunCanonical(d, afd.RunSpec{
				N: n, Crash: []ioa.Loc{3}, Steps: 400, Seed: -1, CrashGate: 100,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Check(tr, n, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOmegaChecker is E2/E3: membership-check cost vs trace length.
func BenchmarkOmegaChecker(b *testing.B) {
	const n = 4
	for _, steps := range []int{200, 800, 3200} {
		b.Run(fmt.Sprintf("len=%d", steps), func(b *testing.B) {
			tr, err := afd.RunCanonical(afd.Omega{}, afd.RunSpec{
				N: n, Crash: []ioa.Loc{3}, Steps: steps, Seed: -1, CrashGate: steps / 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := (afd.Omega{}).Check(tr, n, afd.DefaultWindow()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelfImplementation is E5: Algorithm 3 stacked on P (run + proof
// pipeline).
func BenchmarkSelfImplementation(b *testing.B) {
	const n = 4
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		b.Fatal(err)
	}
	ren := selfimpl.Renaming{From: afd.FamilyP, To: afd.FamilyP + "'"}
	for i := 0; i < b.N; i++ {
		autos := []ioa.Automaton{d.Automaton(n)}
		autos = append(autos, selfimpl.NewCollection(n, ren)...)
		autos = append(autos, system.NewCrash(system.CrashOf(3)))
		sys := ioa.MustNewSystem(autos...)
		sched.RoundRobin(sys, sched.Options{MaxSteps: 600, Gate: sched.CrashesAfter(150, 0)})
		mixed := trace.Project(sys.Trace(), func(a ioa.Action) bool {
			return a.Kind == ioa.KindCrash || a.Kind == ioa.KindFD
		})
		if _, err := selfimpl.VerifyProof(mixed, n, ren); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransformChain is E6: the Theorem-15 composition P→◇P→Ω.
func BenchmarkTransformChain(b *testing.B) {
	const n = 4
	var pToEvP, evPToOmega transform.Local
	for _, l := range transform.Catalog() {
		switch l.Name {
		case "P→◇P":
			pToEvP = l
		case "◇P→Ω":
			evPToOmega = l
		}
	}
	src, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		procs, err := (transform.Chain{pToEvP, evPToOmega}).Procs(n)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := transform.Run(src, procs, afd.FamilyOmega, transform.RunSpec{
			N: n, Crash: []ioa.Loc{3}, Seed: -1, Steps: 1500, CrashGate: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := (afd.Omega{}).Check(tr, n, afd.DefaultWindow()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsensusByDetector is E7: decision cost by detector and n.
func BenchmarkConsensusByDetector(b *testing.B) {
	for _, fam := range []string{afd.FamilyP, afd.FamilyEvP, afd.FamilyEvS, afd.FamilyOmega} {
		for _, n := range []int{3, 5, 7, 9} {
			b.Run(fmt.Sprintf("%s/n=%d", fam, n), func(b *testing.B) {
				d, err := afd.Lookup(fam, n)
				if err != nil {
					b.Fatal(err)
				}
				vals := make([]int, n)
				for i := range vals {
					vals[i] = i % 2
				}
				for i := 0; i < b.N; i++ {
					res, err := consensus.Run(consensus.RunSpec{
						Build: consensus.BuildSpec{N: n, Family: fam, Det: d.Automaton(n), Values: vals},
						Steps: 400_000,
						Seed:  -1,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.AllDecided {
						b.Fatalf("no decision (%s)", res.Reason)
					}
					b.ReportMetric(float64(res.Steps), "events/op")
					b.ReportMetric(float64(res.MaxRound), "rounds/op")
				}
			})
		}
	}
}

// BenchmarkConsensusCrashSweep is E8: decision cost vs coordinator-crash
// timing.
func BenchmarkConsensusCrashSweep(b *testing.B) {
	const n = 3
	for _, gate := range []int{5, 50, 400} {
		b.Run(fmt.Sprintf("gate=%d", gate), func(b *testing.B) {
			d, err := afd.Lookup(afd.FamilyEvP, n)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := consensus.Run(consensus.RunSpec{
					Build: consensus.BuildSpec{
						N: n, Family: afd.FamilyEvP, Det: d.Automaton(n),
						Crash: []ioa.Loc{0}, Values: []int{0, 1, 1},
					},
					Steps:     400_000,
					Seed:      -1,
					CrashGate: gate,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllDecided {
					b.Fatalf("no decision (%s)", res.Reason)
				}
				b.ReportMetric(float64(res.Steps), "events/op")
			}
		})
	}
}

// BenchmarkFLPAdversary is E9: cost of detecting the no-detector stall.
func BenchmarkFLPAdversary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := consensus.Run(consensus.RunSpec{
			Build: consensus.BuildSpec{N: 3, Family: "", Crash: []ioa.Loc{0}, Values: []int{0, 1, 1}},
			Steps: 100_000,
			Seed:  -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Decisions != 0 {
			b.Fatal("unexpected decision without a detector")
		}
	}
}

// BenchmarkValenceExploration is E10: building and valence-tagging RtD, at
// worker counts 1 (serial reference) and GOMAXPROCS (parallel engine).  The
// explored tables are byte-identical across variants; only the wall clock
// and allocation profile differ.
func BenchmarkValenceExploration(b *testing.B) {
	for _, rounds := range []int{3, 6} {
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("n=2/rounds=%d/workers=%d", rounds, workers)
			if workers == 0 {
				name = fmt.Sprintf("n=2/rounds=%d/workers=max", rounds)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e, err := valence.New(valence.Config{
						N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, rounds, nil),
						Workers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := e.Explore(); err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(e.NumNodes()), "nodes/op")
				}
			})
		}
	}
}

// BenchmarkValenceReduced is E18: the same exploration with dynamic
// partial-order reduction on, off for contrast, on the n=2 S-algorithm
// crash configuration (the smallest graph where ample sets prune).  The
// reduced variant reports how many nodes the ample sets saved.
func BenchmarkValenceReduced(b *testing.B) {
	for _, reduce := range []bool{false, true} {
		b.Run(fmt.Sprintf("reduce=%t", reduce), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := valence.New(valence.Config{
					N: 2, Family: afd.FamilyP, Algo: "s",
					TD:     valence.PerfectTD(2, 4, map[ioa.Loc]int{1: 1}),
					Reduce: reduce,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Explore(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(e.NumNodes()), "nodes/op")
				if reduce {
					b.ReportMetric(float64(e.Stats().PrunedSteps), "pruned/op")
				}
			}
		})
	}
}

// BenchmarkHookSearch is E11: hook location and Theorem-59 verification.
func BenchmarkHookSearch(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			e, err := valence.New(valence.Config{
				N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 6, nil),
				Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Explore(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hooks := e.FindHooks(0)
				if len(hooks) == 0 {
					b.Fatal("no hooks")
				}
				for _, h := range hooks {
					if err := e.VerifyHook(h); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(hooks)), "hooks/op")
			}
		})
	}
}

// BenchmarkBoundedClassifier is E12: the Section-7.3 classifiers.
func BenchmarkBoundedClassifier(b *testing.B) {
	le := problems.LeaderElection{N: 4}
	var traces []trace.T
	for v := 0; v < 4; v++ {
		var tr trace.T
		for i := 0; i < 4; i++ {
			tr = append(tr, ioa.EnvOutput(problems.ActNameElect, ioa.Loc(i), ioa.EncodeLoc(ioa.Loc(v))))
		}
		traces = append(traces, tr)
	}
	w := problems.Witness{
		Traces:   traces,
		IsTrace:  func(t trace.T) error { return le.Check(t, false) },
		IsOutput: func(a ioa.Action) bool { return a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameElect },
	}
	for i := 0; i < b.N; i++ {
		if err := w.CheckCrashIndependence(); err != nil {
			b.Fatal(err)
		}
		if _, err := w.CheckBoundedLength(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParticipantFD is E13: consensus from the participant oracle.
func BenchmarkParticipantFD(b *testing.B) {
	const n = 3
	for i := 0; i < b.N; i++ {
		autos := problems.ConsensusViaParticipantProcs(n)
		autos = append(autos, system.Channels(n)...)
		autos = append(autos, problems.NewParticipantOracle(n))
		autos = append(autos, system.ConsensusEnvsFixed([]int{1, 0, 1})...)
		autos = append(autos, system.NewCrash(system.NoFaults()))
		sys := ioa.MustNewSystem(autos...)
		sched.RoundRobin(sys, sched.Options{MaxSteps: 10_000})
		if err := problems.CheckParticipant(sys.Trace()); err != nil {
			b.Fatal(err)
		}
		if len(consensus.Decisions(sys.Trace())) != n {
			b.Fatal("missing decisions")
		}
	}
}

// BenchmarkTraceOps is E14: sampling and constrained-reordering generation
// plus verification.
func BenchmarkTraceOps(b *testing.B) {
	const n = 4
	tr, err := afd.RunCanonical(afd.Perfect{}, afd.RunSpec{
		N: n, Crash: []ioa.Loc{3}, Steps: 200, Seed: -1, CrashGate: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	isOut := afd.IsOutput(afd.FamilyP)
	// sched.PRNG, not math/rand: the generated samplings/reorderings are
	// then stable across Go releases (same motivation as sched.Random).
	rng := sched.NewPRNG(1)
	b.Run("sampling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := trace.GenSampling(tr, n, isOut, rng)
			if err := trace.IsSampling(s, tr, n, isOut); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reordering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := trace.GenConstrainedReordering(tr, rng)
			if err := trace.IsConstrainedReordering(r, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKSetAgreement is E12a: the detector-free (f+1)-set algorithm.
func BenchmarkKSetAgreement(b *testing.B) {
	const n, f = 5, 2
	for i := 0; i < b.N; i++ {
		autos := problems.KSetProcs(n, f)
		autos = append(autos, system.Channels(n)...)
		autos = append(autos, system.ConsensusEnvsFixed([]int{0, 1, 0, 1, 0})...)
		autos = append(autos, system.NewCrash(system.CrashOf(0, 4)))
		sys := ioa.MustNewSystem(autos...)
		sched.RoundRobin(sys, sched.Options{MaxSteps: 50_000, Gate: sched.CrashesAfter(20, 20)})
		if len(consensus.Decisions(sys.Trace())) == 0 {
			b.Fatal("no decisions")
		}
	}
}

// BenchmarkNBAC is E12b: non-blocking atomic commit over P.
func BenchmarkNBAC(b *testing.B) {
	const n = 3
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		procs, err := problems.NBACProcs(n, afd.FamilyP)
		if err != nil {
			b.Fatal(err)
		}
		autos := procs
		autos = append(autos, system.Channels(n)...)
		autos = append(autos, problems.VoterEnvs([]string{problems.VoteYes, problems.VoteYes, problems.VoteYes})...)
		autos = append(autos, d.Automaton(n))
		autos = append(autos, system.NewCrash(system.NoFaults()))
		sys := ioa.MustNewSystem(autos...)
		outcomes := 0
		sched.RoundRobin(sys, sched.Options{
			MaxSteps: 100_000,
			Stop: func(_ *ioa.System, last ioa.Action) bool {
				if last.Kind == ioa.KindEnvOut && last.Name == problems.ActNameOutcome {
					outcomes++
				}
				return outcomes == n
			},
		})
		if outcomes != n {
			b.Fatal("missing outcomes")
		}
	}
}

// BenchmarkMutex is E15: the long-lived ◇-mutex algorithm over ◇P.
func BenchmarkMutex(b *testing.B) {
	const n = 3
	d, err := afd.Lookup(afd.FamilyEvP, n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		procs, err := problems.MutexProcs(n, afd.FamilyEvP)
		if err != nil {
			b.Fatal(err)
		}
		autos := procs
		autos = append(autos, system.Channels(n)...)
		autos = append(autos, d.Automaton(n))
		autos = append(autos, system.NewCrash(system.CrashOf(2)))
		sys := ioa.MustNewSystem(autos...)
		sched.RoundRobin(sys, sched.Options{MaxSteps: 4000, Gate: sched.CrashesAfter(60, 0)})
		rounds := problems.MutexRounds(sys.Trace())
		total := 0
		for _, c := range rounds {
			total += c
		}
		if total == 0 {
			b.Fatal("no critical sections")
		}
		b.ReportMetric(float64(total), "cs/op")
	}
}

// BenchmarkURB is E16: uniform reliable broadcast by majority diffusion.
func BenchmarkURB(b *testing.B) {
	const n = 5
	for i := 0; i < b.N; i++ {
		autos := problems.URBMajorityProcs(n)
		autos = append(autos, system.Channels(n)...)
		for j := 0; j < n; j++ {
			autos = append(autos, problems.NewBroadcasterEnv(ioa.Loc(j), fmt.Sprintf("m%d", j)))
		}
		autos = append(autos, system.NewCrash(system.CrashOf(0, 4)))
		sys := ioa.MustNewSystem(autos...)
		sched.RoundRobin(sys, sched.Options{MaxSteps: 30_000, Gate: sched.CrashesAfter(20, 20)})
		delivers := 0
		for _, a := range sys.Trace() {
			if a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameDeliver {
				delivers++
			}
		}
		if delivers == 0 {
			b.Fatal("no deliveries")
		}
		b.ReportMetric(float64(delivers), "delivers/op")
	}
}
